//! Michael-Scott lock-free FIFO queue.
//!
//! Not part of the paper's figures, but included as the canonical lock-free
//! queue baseline: it exercises the same two-slot protection pattern
//! (head + next) that the wait-free queues need, with far simpler logic, and
//! it is what the CRTurn queue degenerates to when helping is never needed.

use core::mem::ManuallyDrop;
use core::ptr;
use std::sync::Arc;
use wfe_sync::atomic::Ordering;

use wfe_atomics::Backoff;
use wfe_reclaim::{Atomic, Handle, Linked, Reclaimer, Shield};

use crate::traits::ConcurrentQueue;

/// A queue node; the value lives in the node *after* the sentinel.
pub struct Node<T> {
    value: Option<ManuallyDrop<T>>,
    next: Atomic<Node<T>>,
}

/// Michael-Scott lock-free queue, parameterised by the reclamation scheme.
pub struct MichaelScottQueue<T, R: Reclaimer> {
    head: Atomic<Node<T>>,
    tail: Atomic<Node<T>>,
    domain: Arc<R>,
}

// SAFETY: nodes hold `T` by value; all shared-pointer access goes through the reclamation protocol, so sending the
// structure is sending the `T`s it owns.
unsafe impl<T: Send, R: Reclaimer> Send for MichaelScottQueue<T, R> {}
// SAFETY: every `&self` method is lock-free-safe by construction (the
// algorithm's own synchronisation); `T: Send` suffices because values
// are moved in/out, never shared by reference across threads.
unsafe impl<T: Send, R: Reclaimer> Sync for MichaelScottQueue<T, R> {}

impl<T, R: Reclaimer> MichaelScottQueue<T, R> {
    /// Reservation slots the queue needs per thread: the head (or tail)
    /// snapshot and its successor.
    pub const REQUIRED_SLOTS: usize = 2;

    /// Leases one shield (enqueue protects only the tail snapshot).
    fn one_shield(handle: &R::Handle) -> Shield<Node<T>, R::Handle> {
        handle
            .shield()
            .expect("MichaelScottQueue: reservation slots exhausted")
    }

    /// Creates an empty queue guarded by `domain`.
    pub fn new(domain: Arc<R>) -> Self {
        debug_assert!(
            domain.config().slots_per_thread >= Self::REQUIRED_SLOTS,
            "MichaelScottQueue needs {} reservation slots per thread, domain provides {}",
            Self::REQUIRED_SLOTS,
            domain.config().slots_per_thread,
        );
        let mut handle = domain.register();
        let sentinel = handle.alloc(Node {
            value: None,
            next: Atomic::null(),
        });
        drop(handle);
        Self {
            head: Atomic::new(sentinel),
            tail: Atomic::new(sentinel),
            domain,
        }
    }

    /// The reclamation domain guarding this queue.
    pub fn domain(&self) -> &Arc<R> {
        &self.domain
    }

    /// Appends `value` at the tail.
    pub fn enqueue(&self, handle: &mut R::Handle, value: T) {
        let mut tail_shield = Self::one_shield(handle);
        let node = handle.alloc(Node {
            value: Some(ManuallyDrop::new(value)),
            next: Atomic::null(),
        });
        let guard = handle.enter();
        let mut backoff = Backoff::new();
        loop {
            let tail = tail_shield.protect(&guard, &self.tail, None);
            // SAFETY: `tail_shield` protects `tail` and is only re-protected
            // at the top of the next loop iteration, after this reference's
            // last use.
            let tail_ref = unsafe { tail.as_ref() }.expect("the tail is never null");
            let next = tail_ref.next.load(Ordering::Acquire); // ORDER: pairs with the AcqRel append of the successor.
            if next.is_null() {
                if tail_ref
                    .next
                    .compare_exchange(ptr::null_mut(), node, Ordering::AcqRel, Ordering::Acquire) // ORDER: success publishes the appended node; failure observes the winning append.
                    .is_ok()
                {
                    // Swing the tail; failure means someone already did it.
                    let _ = self.tail.compare_exchange(
                        tail.as_raw(),
                        node,
                        Ordering::AcqRel, // ORDER: success publishes the new tail; failure means someone already swung it.
                        Ordering::Acquire,
                    );
                    break;
                }
            } else {
                // Help a lagging enqueuer move the tail forward.
                let _ = self.tail.compare_exchange(
                    tail.as_raw(),
                    next,
                    Ordering::AcqRel, // ORDER: helping CAS; success publishes the tail, failure observes the winner.
                    Ordering::Acquire,
                );
            }
            backoff.spin();
        }
    }

    /// Removes the element at the head, if any.
    pub fn dequeue(&self, handle: &mut R::Handle) -> Option<T> {
        let mut head_shield = Self::one_shield(handle);
        let mut next_shield = Self::one_shield(handle);
        let guard = handle.enter();
        let mut backoff = Backoff::new();
        loop {
            let head = head_shield.protect(&guard, &self.head, None);
            // SAFETY: `head` and `next` each have their own shield
            // (head_shield / next_shield), re-protected only at the top of
            // the next iteration — after the last use of both references.
            let head_ref = unsafe { head.as_ref() }.expect("the head is never null");
            let tail = self.tail.load(Ordering::Acquire); // ORDER: snapshot for the lag check; pairs with the AcqRel tail swing.
            let next = next_shield.protect(&guard, &head_ref.next, Some(head));
            // ORDER: head re-validation; pairs with the AcqRel head swing.
            if head.as_raw() != self.head.load(Ordering::Acquire) {
                backoff.spin();
                continue;
            }
            // SAFETY: as above — `next_shield` protects `next` until the
            // next loop iteration.
            let Some(next_ref) = (unsafe { next.as_ref() }) else {
                return None; // empty queue
            };
            if head.as_raw() == tail {
                // Tail is lagging behind; help it before touching the head.
                let _ = self.tail.compare_exchange(
                    tail,
                    next.as_raw(),
                    Ordering::AcqRel, // ORDER: helping CAS; success publishes the tail, failure observes the winner.
                    Ordering::Acquire,
                );
                continue;
            }
            if self
                .head
                .compare_exchange(
                    head.as_raw(),
                    next.as_raw(),
                    Ordering::AcqRel, // ORDER: success publishes the new head; failure observes the winning swing.
                    Ordering::Acquire,
                )
                .is_ok()
            {
                // `next` is the new sentinel; we own its value.
                // SAFETY: the head CAS transferred ownership of `next`'s
                // value to us; nobody else reads it out.
                let value = next_ref.value.as_ref().map(|v| unsafe { ptr::read(&**v) });
                // SAFETY: the same CAS unlinked the old sentinel `head`; it
                // is retired exactly once.
                unsafe { head.retire_in(&guard) };
                return value;
            }
            backoff.spin();
        }
    }

    /// Returns `true` if the queue appeared empty at the moment of the call.
    ///
    /// Takes the calling thread's handle because answering requires reading
    /// the head sentinel's `next` field, and the sentinel may be retired by a
    /// concurrent dequeue — the read must be protected like any other.
    pub fn is_empty(&self, handle: &mut R::Handle) -> bool {
        let mut head_shield = Self::one_shield(handle);
        let guard = handle.enter();
        let head = head_shield.protect(&guard, &self.head, None);
        // SAFETY: `head_shield` is not re-protected for the rest of this
        // function.
        unsafe { head.as_ref() }
            .expect("the head is never null")
            .next
            .load(Ordering::Acquire) // ORDER: pairs with the AcqRel append of the successor.
            .is_null()
    }
}

impl<T, R: Reclaimer> Drop for MichaelScottQueue<T, R> {
    fn drop(&mut self) {
        // Exclusive access: free the sentinel and every queued node, dropping
        // the values still owned by the queue.
        let mut cur = self.head.load(Ordering::Relaxed); // ORDER: Drop has exclusive access.
        while !cur.is_null() {
            // SAFETY: `Drop` has exclusive access; every reachable node is
            // freed exactly once, dropping any value it still owns.
            unsafe {
                let next = (*cur).value.next.load(Ordering::Relaxed); // ORDER: Drop has exclusive access.
                if let Some(value) = (*cur).value.value.as_mut() {
                    ManuallyDrop::drop(value);
                }
                Linked::dealloc(cur);
                cur = next;
            }
        }
    }
}

impl<R: Reclaimer> ConcurrentQueue<R> for MichaelScottQueue<u64, R> {
    fn with_domain(domain: Arc<R>) -> Self {
        Self::new(domain)
    }

    fn enqueue(&self, handle: &mut R::Handle, value: u64) {
        MichaelScottQueue::enqueue(self, handle, value)
    }

    fn dequeue(&self, handle: &mut R::Handle) -> Option<u64> {
        MichaelScottQueue::dequeue(self, handle)
    }

    fn required_slots() -> usize {
        Self::REQUIRED_SLOTS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfe_reclaim::{Ebr, He, Hp, Ibr2Ge, ReclaimerConfig};
    use wfe_sync::atomic::{AtomicU64, Ordering::SeqCst};

    fn fifo_single_threaded<R: Reclaimer>() {
        let domain = R::new_default();
        let queue = MichaelScottQueue::<u64, R>::new(Arc::clone(&domain));
        let mut handle = domain.register();
        assert!(queue.is_empty(&mut handle));
        assert_eq!(queue.dequeue(&mut handle), None);
        for i in 0..100 {
            queue.enqueue(&mut handle, i);
        }
        for i in 0..100 {
            assert_eq!(queue.dequeue(&mut handle), Some(i));
        }
        assert_eq!(queue.dequeue(&mut handle), None);
        assert!(queue.is_empty(&mut handle));
    }

    #[test]
    fn fifo_order_under_every_scheme() {
        fifo_single_threaded::<He>();
        fifo_single_threaded::<Ebr>();
        fifo_single_threaded::<Hp>();
        fifo_single_threaded::<Ibr2Ge>();
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_sum() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 5_000;
        let domain = He::with_config(ReclaimerConfig::with_max_threads(THREADS + 1));
        let queue = MichaelScottQueue::<u64, He>::new(Arc::clone(&domain));
        let consumed = AtomicU64::new(0);
        let consumed_count = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                let queue = &queue;
                let domain = Arc::clone(&domain);
                let consumed = &consumed;
                let consumed_count = &consumed_count;
                scope.spawn(move || {
                    let mut handle = domain.register();
                    for i in 1..=PER_THREAD {
                        queue.enqueue(&mut handle, t * PER_THREAD + i);
                        if let Some(v) = queue.dequeue(&mut handle) {
                            consumed.fetch_add(v, SeqCst);
                            consumed_count.fetch_add(1, SeqCst);
                        }
                    }
                });
            }
        });
        let mut handle = domain.register();
        while let Some(v) = queue.dequeue(&mut handle) {
            consumed.fetch_add(v, SeqCst);
            consumed_count.fetch_add(1, SeqCst);
        }
        let total: u64 = (0..THREADS as u64)
            .flat_map(|t| (1..=PER_THREAD).map(move |i| t * PER_THREAD + i))
            .sum();
        assert_eq!(consumed_count.load(SeqCst), THREADS as u64 * PER_THREAD);
        assert_eq!(consumed.load(SeqCst), total);
    }
}
