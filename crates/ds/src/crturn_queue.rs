//! Ramalhete-Correia CRTurn wait-free MPMC queue.
//!
//! The second wait-free queue of the paper's evaluation (Figures 5c/5d) and,
//! together with [`KoganPetrankQueue`](crate::KoganPetrankQueue), one half of
//! the paper's headline claim: pairing a wait-free data structure with WFE's
//! wait-free reclamation yields the first queue that is wait-free *end to
//! end*, memory management included. Unlike the Kogan-Petrank queue — whose
//! original formulation assumes a garbage collector — CRTurn was designed
//! from the start for manual reclamation with a bounded number of hazardous
//! reservations, which is why the paper uses it as the second queue workload.
//!
//! # Algorithm
//!
//! CRTurn replaces Kogan-Petrank's phase-numbered descriptors with three
//! fixed-size per-thread request arrays and a *turn* taken from the node at
//! the boundary of the operation:
//!
//! * `enqueuers[tid]` holds the node thread `tid` wants to append (null when
//!   no enqueue is pending). The node that currently is the tail names the
//!   thread whose request it satisfied (`enq_tid`); helpers serve the *next*
//!   pending enqueuer after that index in circular order, so every pending
//!   enqueue is appended after at most `max_threads` tail advances.
//! * `deqself[tid]`/`deqhelp[tid]` encode dequeue requests: a request is
//!   *open* while both hold the same node. Helpers claim the node after the
//!   head for the open request whose turn it is (the index stored in the
//!   departing head's `deq_tid` decides whose turn comes next), publish it in
//!   `deqhelp[tid]`, and only then swing the head.
//!
//! Every operation helps the request whose turn it is before (re)trying its
//! own, so each operation completes within a bounded number of steps
//! regardless of the behaviour of other threads — the textbook wait-free
//! guarantee, with no unbounded phase counter.
//!
//! # Reclamation
//!
//! Nodes are allocated and retired through the [`Reclaimer`] API, so the
//! queue composes with all six schemes of the evaluation. The retirement
//! protocol is the one from the original paper, adapted to the suite's
//! reservation-slot interface:
//!
//! * a dequeued node is handed to its requester through `deqhelp[tid]` and
//!   doubles as the queue's sentinel; it is retired by that same thread at
//!   the start of its *next* successful dequeue (`pr_req` below), when it can
//!   no longer be the sentinel or be read by helpers on behalf of `tid`;
//! * helpers therefore only ever dereference nodes they protect with one of
//!   the three reservation slots ([`CrTurnQueue::REQUIRED_SLOTS`]).

use core::ptr;
use std::sync::Arc;
use wfe_sync::atomic::{AtomicI64, Ordering};

use wfe_reclaim::{Atomic, Guard, Handle, Linked, Protected, RawHandle, Reclaimer, Shield};

use crate::traits::ConcurrentQueue;

/// `deq_tid` value of a node not (yet) claimed by any dequeue request.
const IDX_NONE: i64 = -1;

/// A queue node. The value lives in the node *after* the sentinel, exactly as
/// in the Michael-Scott queue.
pub struct Node<T> {
    value: Option<T>,
    next: Atomic<Node<T>>,
    /// Thread id of the enqueuer whose request this node satisfied; helpers
    /// use it as the turn marker for serving the next pending enqueue.
    enq_tid: usize,
    /// Thread id of the dequeue request this node was claimed for, or
    /// [`IDX_NONE`]. Written once by CAS; the departing head's value decides
    /// whose turn the next dequeue is.
    deq_tid: AtomicI64,
}

impl<T> Node<T> {
    fn new(value: Option<T>, enq_tid: usize) -> Self {
        Self {
            value,
            next: Atomic::null(),
            enq_tid,
            deq_tid: AtomicI64::new(IDX_NONE),
        }
    }
}

/// An opened-but-unfinished dequeue, as returned by the stall test hook
/// [`CrTurnQueue::stall_dequeue_publish`]. Must be passed back to
/// [`CrTurnQueue::resume_dequeue`]: abandoning the ticket strands the
/// thread's previous request marker, which is then reachable from neither
/// the queue nor the request arrays and leaks when the queue is dropped.
#[doc(hidden)]
#[derive(Debug)]
#[must_use = "abandoning the ticket leaks the previous request marker; pass it to resume_dequeue"]
pub struct DequeueTicket<T> {
    pr_req: *mut Linked<Node<T>>,
    my_req: *mut Linked<Node<T>>,
}

/// CRTurn wait-free queue, parameterised by the reclamation scheme.
///
/// Thread ids up to the domain's `max_threads` are supported; every slot of
/// the request arrays is sized at construction (the fixed-capacity
/// registration pattern shared with [`KoganPetrankQueue`]).
///
/// [`KoganPetrankQueue`]: crate::KoganPetrankQueue
pub struct CrTurnQueue<T, R: Reclaimer> {
    head: Atomic<Node<T>>,
    tail: Atomic<Node<T>>,
    /// Pending enqueue request (the node to append) per thread id, or null.
    enqueuers: Box<[Atomic<Node<T>>]>,
    /// Request marker a thread published for its in-flight dequeue.
    deqself: Box<[Atomic<Node<T>>]>,
    /// Node granted to a thread's dequeue request; equal to `deqself[tid]`
    /// exactly while the request is open.
    deqhelp: Box<[Atomic<Node<T>>]>,
    domain: Arc<R>,
}

// SAFETY: nodes and request arrays hold `T` by value; all shared-pointer access goes through the reclamation protocol, so sending the
// structure is sending the `T`s it owns.
unsafe impl<T: Send, R: Reclaimer> Send for CrTurnQueue<T, R> {}
// SAFETY: every `&self` method is lock-free-safe by construction (the
// algorithm's own synchronisation); `T: Send` suffices because values
// are moved in/out, never shared by reference across threads.
unsafe impl<T: Send, R: Reclaimer> Sync for CrTurnQueue<T, R> {}

/// The three shields one operation needs: the head/tail snapshot, the node
/// after the protected head, and the helped dequeuer's `deqhelp` entry while
/// a helper fulfils that thread's request on its behalf.
struct CrShields<T, H: RawHandle> {
    first: Shield<Node<T>, H>,
    next: Shield<Node<T>, H>,
    deq: Shield<Node<T>, H>,
}

impl<T: Copy, R: Reclaimer> CrTurnQueue<T, R> {
    /// Reservation slots the queue needs per thread: the head/tail snapshot
    /// and its successor (as in every queue), plus one extra induced by
    /// helping — a helper must pin the *helped* thread's `deqhelp` node while
    /// fulfilling that request on its behalf.
    pub const REQUIRED_SLOTS: usize = 3;

    /// Leases the three shields of one operation.
    fn shields(handle: &R::Handle) -> CrShields<T, R::Handle> {
        let exhausted = "CrTurnQueue: reservation slots exhausted (needs three Shields)";
        CrShields {
            first: handle.shield().expect(exhausted),
            next: handle.shield().expect(exhausted),
            deq: handle.shield().expect(exhausted),
        }
    }

    /// Creates an empty queue guarded by `domain`. The queue supports thread
    /// ids up to the domain's `max_threads`.
    pub fn new(domain: Arc<R>) -> Self {
        debug_assert!(
            domain.config().slots_per_thread >= Self::REQUIRED_SLOTS,
            "CrTurnQueue needs {} reservation slots per thread, domain provides {}",
            Self::REQUIRED_SLOTS,
            domain.config().slots_per_thread,
        );
        let max_threads = domain.config().max_threads;
        let mut handle = domain.register();
        let sentinel = handle.alloc(Node::new(None, 0));
        let enqueuers = (0..max_threads).map(|_| Atomic::null()).collect();
        // Distinct dummy nodes per thread so every request starts *closed*
        // (`deqself[tid] != deqhelp[tid]`); the dummies are retired like any
        // other request marker once the thread dequeues.
        let deqself = (0..max_threads)
            .map(|_| Atomic::new(handle.alloc(Node::new(None, 0))))
            .collect();
        let deqhelp = (0..max_threads)
            .map(|_| Atomic::new(handle.alloc(Node::new(None, 0))))
            .collect();
        drop(handle);
        Self {
            head: Atomic::new(sentinel),
            tail: Atomic::new(sentinel),
            enqueuers,
            deqself,
            deqhelp,
            domain,
        }
    }

    /// The reclamation domain guarding this queue.
    pub fn domain(&self) -> &Arc<R> {
        &self.domain
    }

    fn max_threads(&self) -> usize {
        self.enqueuers.len()
    }

    /// Appends `value` at the tail. Wait-free: completes within
    /// `max_threads` turn-serving rounds regardless of other threads.
    pub fn enqueue(&self, handle: &mut R::Handle, value: T) {
        // Enqueue only ever pins the tail snapshot; dequeue needs all three.
        let mut tail_shield: Shield<Node<T>, R::Handle> = handle
            .shield()
            .expect("CrTurnQueue: reservation slots exhausted (enqueue needs one Shield)");
        let guard = handle.enter();
        let tid = self.publish_enqueue_request(&guard, value);
        self.complete_enqueue(&guard, &mut tail_shield, tid);
    }

    /// Step 1 of an enqueue: publish the node in `enqueuers[tid]` where any
    /// thread can (and eventually will) append it on our behalf.
    fn publish_enqueue_request(&self, guard: &Guard<'_, R::Handle>, value: T) -> usize {
        let tid = guard.thread_id();
        let node = guard.alloc(Node::new(Some(value), tid));
        self.enqueuers[tid].store(node, Ordering::SeqCst);
        tid
    }

    /// Steps 2-4 of an enqueue: serve requests in turn order until ours has
    /// been appended (at most `max_threads` tail advances away).
    fn complete_enqueue(
        &self,
        guard: &Guard<'_, R::Handle>,
        tail_shield: &mut Shield<Node<T>, R::Handle>,
        tid: usize,
    ) {
        let max_threads = self.max_threads();
        for _ in 0..max_threads {
            // ORDER: null means a helper closed our request; pairs with that AcqRel/Release close.
            if self.enqueuers[tid].load(Ordering::Acquire).is_null() {
                break; // Some thread appended our node for us.
            }
            let ltail = tail_shield.protect(guard, &self.tail, None);
            // ORDER: tail re-validation; pairs with the AcqRel tail swing.
            if ltail.as_raw() != self.tail.load(Ordering::Acquire) {
                continue; // Tail advanced: one more request was served.
            }
            // SAFETY: `tail_shield` protects `ltail`; it is re-protected
            // only on the next loop iteration, after this reference's last
            // use.
            let ltail_ref = unsafe { ltail.as_ref() }.expect("the tail is never null");
            // Step 4 for the previous enqueue: the node that became the tail
            // satisfied `enq_tid`'s request; close that request.
            let ltail_enq_tid = ltail_ref.enq_tid;
            // ORDER: pairs with the SeqCst publish of the enqueue request.
            if self.enqueuers[ltail_enq_tid].load(Ordering::Acquire) == ltail.as_raw() {
                let _ = self.enqueuers[ltail_enq_tid].compare_exchange(
                    ltail.as_raw(),
                    ptr::null_mut(),
                    Ordering::AcqRel, // ORDER: success publishes the served request's close; failure observes a concurrent close.
                    Ordering::Acquire,
                );
            }
            // Step 2: append the node of the next pending enqueuer in turn
            // order (circularly after the tail's own enqueuer).
            for j in 1..=max_threads {
                let node_to_help =
                    self.enqueuers[(j + ltail_enq_tid) % max_threads].load(Ordering::Acquire); // ORDER: pairs with the SeqCst publish of the pending request.
                if node_to_help.is_null() {
                    continue;
                }
                let _ = ltail_ref.next.compare_exchange(
                    ptr::null_mut(),
                    node_to_help,
                    Ordering::AcqRel, // ORDER: success publishes the appended node; failure observes the winning append.
                    Ordering::Acquire,
                );
                break;
            }
            // Step 3: swing the tail over whatever got appended.
            let lnext = ltail_ref.next.load(Ordering::Acquire); // ORDER: pairs with the AcqRel append of the successor.
            if !lnext.is_null() {
                let _ = self.tail.compare_exchange(
                    ltail.as_raw(),
                    lnext,
                    Ordering::AcqRel, // ORDER: success publishes the new tail; failure observes the winning swing.
                    Ordering::Acquire,
                );
            }
        }
        // After `max_threads` tail advances our request must have been served;
        // close it ourselves in case no helper got to step 4 yet.
        self.enqueuers[tid].store(ptr::null_mut(), Ordering::Release); // ORDER: closes our own request; pairs with helpers' Acquire reads.
    }

    /// Removes the element at the head, if any. Wait-free: the request is
    /// granted within `max_threads` head advances.
    pub fn dequeue(&self, handle: &mut R::Handle) -> Option<T> {
        let mut sh = Self::shields(handle);
        let guard = handle.enter();
        let tid = guard.thread_id();
        let (pr_req, my_req) = self.publish_dequeue_request(tid);
        self.complete_dequeue(&guard, &mut sh, tid, pr_req, my_req)
    }

    /// Step 1 of a dequeue: open this thread's request by making `deqself`
    /// and `deqhelp` agree on the current request marker.
    fn publish_dequeue_request(&self, tid: usize) -> (*mut Linked<Node<T>>, *mut Linked<Node<T>>) {
        let pr_req = self.deqself[tid].load(Ordering::Acquire); // ORDER: the marker it names was granted by a helper's AcqRel CAS; pairs with that.
        let my_req = self.deqhelp[tid].load(Ordering::Acquire); // ORDER: pairs with helpers' AcqRel grant of our previous request.
        self.deqself[tid].store(my_req, Ordering::SeqCst);
        (pr_req, my_req)
    }

    /// Steps 2-3 of a dequeue: serve open requests in turn order until ours
    /// is granted (or the queue is seen empty), then read the granted node.
    fn complete_dequeue(
        &self,
        guard: &Guard<'_, R::Handle>,
        sh: &mut CrShields<T, R::Handle>,
        tid: usize,
        pr_req: *mut Linked<Node<T>>,
        my_req: *mut Linked<Node<T>>,
    ) -> Option<T> {
        for _ in 0..self.max_threads() {
            // ORDER: a change means a helper granted our request; pairs with that AcqRel CAS.
            if self.deqhelp[tid].load(Ordering::Acquire) != my_req {
                break; // Our request has been granted.
            }
            let lhead = sh.first.protect(guard, &self.head, None);
            // ORDER: empty check; pairs with the AcqRel tail swing.
            if lhead.as_raw() == self.tail.load(Ordering::Acquire) {
                // The queue is empty. Close the request, then resolve the
                // race with helpers that read it while it was still open.
                self.deqself[tid].store(pr_req, Ordering::SeqCst);
                self.give_up(guard, sh, my_req, tid);
                // ORDER: re-check after close; pairs with a helper's AcqRel grant.
                if self.deqhelp[tid].load(Ordering::Acquire) != my_req {
                    // A helper granted us a node anyway; take it below.
                    self.deqself[tid].store(my_req, Ordering::Relaxed); // ORDER: own slot (single writer); the grant itself was read with Acquire above.
                    break;
                }
                return None;
            }
            // SAFETY: `sh.first` protects `lhead`; the protects below go
            // through `sh.next`/`sh.deq`, so the reference stays pinned
            // until the next loop iteration.
            let lhead_ref = unsafe { lhead.as_ref() }.expect("the head is never null");
            let lnext = sh.next.protect(guard, &lhead_ref.next, Some(lhead));
            // ORDER: head re-validation; pairs with the AcqRel head swing.
            if lhead.as_raw() != self.head.load(Ordering::Acquire) {
                continue;
            }
            // `head != tail` implies a successor (the head never overtakes
            // the tail); the check is purely defensive, as in `give_up`.
            if lnext.is_null() {
                continue;
            }
            if self.search_next(lhead, lnext) != IDX_NONE {
                self.cas_deq_and_head(guard, sh, lhead, lnext, tid);
            }
        }
        // Our request is granted: `deqhelp[tid]` holds the node with our
        // value. Only we will ever retire it (as `pr_req` of our next
        // dequeue), so reading it without a reservation is safe.
        // SAFETY: ownership argument above — the granted node can only be
        // retired by this thread, at the start of its *next* dequeue.
        let my_node =
            unsafe { Protected::from_unlinked(self.deqhelp[tid].load(Ordering::Acquire)) }; // ORDER: pairs with the helper's AcqRel grant that closed our request.
        debug_assert!(
            my_node.as_raw() != my_req,
            "request still open after bounded help"
        );
        // Finish step 3 on behalf of the helper that granted us `my_node` but
        // has not swung the head yet.
        let lhead = sh.first.protect(guard, &self.head, None);
        // SAFETY: `sh.first` protects `lhead` and is not re-protected for
        // the rest of this function.
        let lhead_next = unsafe { lhead.as_ref() }
            .expect("the head is never null")
            .next
            .load(Ordering::Acquire); // ORDER: pairs with the AcqRel append of the successor.
                                      // ORDER: head re-validation; pairs with the AcqRel head swing.
        if lhead.as_raw() == self.head.load(Ordering::Acquire) && my_node.as_raw() == lhead_next {
            let _ = self.head.compare_exchange(
                lhead.as_raw(),
                my_node.as_raw(),
                Ordering::AcqRel, // ORDER: success publishes the new head; failure observes the winning swing.
                Ordering::Acquire,
            );
        }
        // SAFETY: `my_node` was built with `from_unlinked` under the
        // ownership argument above — only this thread can retire it, and it
        // does so no earlier than its next dequeue.
        let value = unsafe { my_node.as_ref() }
            .expect("granted node is never null")
            .value;
        // The marker of our *previous* request can no longer be the sentinel
        // or be named by any in-flight helper on our behalf: retire it.
        // SAFETY: exactly the argument above — only this thread retires its
        // previous request marker, and it does so once.
        unsafe { Protected::from_unlinked(pr_req).retire_in(guard) };
        value
    }

    /// Decides which open dequeue request the node `lnext` serves: the first
    /// open request circularly after the departing head's `deq_tid`. Returns
    /// the claimed thread id, or [`IDX_NONE`] if no request is open.
    fn search_next(&self, lhead: Protected<'_, Node<T>>, lnext: Protected<'_, Node<T>>) -> i64 {
        let max_threads = self.max_threads();
        // SAFETY: the caller protects `lhead` through `sh.first` and does
        // not re-protect it while this call runs.
        let turn = unsafe { lhead.as_ref() }
            .expect("the head is never null")
            .deq_tid
            .load(Ordering::Acquire); // ORDER: pairs with the AcqRel claim recorded in the departing head.
                                      // SAFETY: the caller protects `lnext` through `sh.next` and does not
                                      // re-protect it while this call runs.
        let lnext_ref = unsafe { lnext.as_ref() }.expect("caller checked lnext is non-null");
        for idx in (turn + 1)..(turn + 1 + max_threads as i64) {
            let id_deq = idx as usize % max_threads;
            if self.deqself[id_deq].load(Ordering::Acquire) // ORDER: open-request check; pairs with the SeqCst open and AcqRel grants.
                != self.deqhelp[id_deq].load(Ordering::Acquire)
            {
                continue; // Closed request.
            }
            // ORDER: claim check; pairs with the AcqRel claim CAS.
            if lnext_ref.deq_tid.load(Ordering::Acquire) == IDX_NONE {
                let _ = lnext_ref.deq_tid.compare_exchange(
                    IDX_NONE,
                    id_deq as i64,
                    Ordering::AcqRel, // ORDER: success publishes the claim; failure observes the winning claim.
                    Ordering::Acquire,
                );
            }
            break;
        }
        lnext_ref.deq_tid.load(Ordering::Acquire) // ORDER: returns the claim; pairs with the AcqRel claim CAS.
    }

    /// Grants `lnext` to the request it was claimed for, then swings the
    /// head. `lhead` and `lnext` must be protected by the caller.
    fn cas_deq_and_head(
        &self,
        guard: &Guard<'_, R::Handle>,
        sh: &mut CrShields<T, R::Handle>,
        lhead: Protected<'_, Node<T>>,
        lnext: Protected<'_, Node<T>>,
        tid: usize,
    ) {
        // SAFETY: the caller protects `lnext` through `sh.next`; the only
        // protect below goes through `sh.deq`.
        let ldeq_tid = unsafe { lnext.as_ref() }
            .expect("caller checked lnext is non-null")
            .deq_tid
            .load(Ordering::Acquire); // ORDER: pairs with the AcqRel claim of `lnext`.
        debug_assert!(ldeq_tid >= 0, "granting an unclaimed node");
        let ldeq_tid = ldeq_tid as usize;
        if ldeq_tid == tid {
            // Our own request: no other thread stores anything else here.
            self.deqhelp[ldeq_tid].store(lnext.as_raw(), Ordering::Release); // ORDER: publishes the grant; pairs with Acquire reads of `deqhelp`.
        } else {
            // Helping another thread: pin its current marker so the CAS
            // cannot ABA over a recycled node, and re-validate the head.
            let ldeqhelp = sh.deq.protect(guard, &self.deqhelp[ldeq_tid], None);
            if ldeqhelp.as_raw() != lnext.as_raw()
                // ORDER: head re-validation; pairs with the AcqRel head swing.
                && lhead.as_raw() == self.head.load(Ordering::Acquire)
            {
                let _ = self.deqhelp[ldeq_tid].compare_exchange(
                    ldeqhelp.as_raw(),
                    lnext.as_raw(),
                    Ordering::AcqRel, // ORDER: success publishes the grant; failure observes the winning grant.
                    Ordering::Acquire,
                );
            }
        }
        let _ = self.head.compare_exchange(
            lhead.as_raw(),
            lnext.as_raw(),
            Ordering::AcqRel, // ORDER: success publishes the new head; failure observes the winning swing.
            Ordering::Acquire,
        );
    }

    /// Called after closing a request on the empty path: if the queue turned
    /// non-empty in the meantime, decisively claim the node after the head —
    /// for whichever request is open, or for ourselves — so that no helper
    /// that still saw our request open can grant us a node *after* we report
    /// the queue empty.
    fn give_up(
        &self,
        guard: &Guard<'_, R::Handle>,
        sh: &mut CrShields<T, R::Handle>,
        my_req: *mut Linked<Node<T>>,
        tid: usize,
    ) {
        let lhead = sh.first.protect(guard, &self.head, None);
        if self.deqhelp[tid].load(Ordering::Acquire) != my_req // ORDER: pairs with a helper's AcqRel grant.
            || lhead.as_raw() == self.tail.load(Ordering::Acquire)
        // ORDER: empty re-check; pairs with the AcqRel tail swing.
        {
            return;
        }
        // SAFETY: `sh.first` protects `lhead`; only `sh.next` and `sh.deq`
        // are re-protected below.
        let lhead_ref = unsafe { lhead.as_ref() }.expect("the head is never null");
        let lnext = sh.next.protect(guard, &lhead_ref.next, Some(lhead));
        // ORDER: head re-validation; pairs with the AcqRel head swing.
        if lhead.as_raw() != self.head.load(Ordering::Acquire) || lnext.is_null() {
            return;
        }
        if self.search_next(lhead, lnext) == IDX_NONE {
            // SAFETY: `sh.next` protects `lnext` and is not re-protected for
            // the rest of this function.
            let _ = unsafe { lnext.as_ref() }
                .expect("checked non-null above")
                .deq_tid
                // ORDER: success publishes the claim; failure observes the winner.
                .compare_exchange(IDX_NONE, tid as i64, Ordering::AcqRel, Ordering::Acquire);
        }
        self.cas_deq_and_head(guard, sh, lhead, lnext, tid);
    }

    /// Returns `true` if the queue appeared empty at the moment of the call.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire) == self.tail.load(Ordering::Acquire) // ORDER: emptiness snapshot; pairs with the AcqRel head/tail swings.
    }

    /// Test hook: publishes an enqueue request and returns *without helping*,
    /// emulating a thread that stalls mid-operation. Helpers append the node
    /// on the stalled thread's behalf; the element is fully enqueued once any
    /// other thread runs its own operation past this request's turn.
    #[doc(hidden)]
    pub fn stall_enqueue_publish(&self, handle: &mut R::Handle, value: T) {
        let guard = handle.enter();
        self.publish_enqueue_request(&guard, value);
    }

    /// Test hook: opens a dequeue request and returns without helping,
    /// emulating a thread that stalls mid-operation. Pass the ticket to
    /// [`CrTurnQueue::resume_dequeue`] to finish the operation later.
    #[doc(hidden)]
    pub fn stall_dequeue_publish(&self, handle: &mut R::Handle) -> DequeueTicket<T> {
        let guard = handle.enter();
        let (pr_req, my_req) = self.publish_dequeue_request(guard.thread_id());
        DequeueTicket { pr_req, my_req }
    }

    /// Test hook: finishes a dequeue opened by
    /// [`CrTurnQueue::stall_dequeue_publish`]. Must be called on the same
    /// thread (same handle) that opened the ticket.
    #[doc(hidden)]
    pub fn resume_dequeue(&self, handle: &mut R::Handle, ticket: DequeueTicket<T>) -> Option<T> {
        let mut sh = Self::shields(handle);
        let guard = handle.enter();
        let tid = guard.thread_id();
        self.complete_dequeue(&guard, &mut sh, tid, ticket.pr_req, ticket.my_req)
    }
}

impl<T, R: Reclaimer> Drop for CrTurnQueue<T, R> {
    fn drop(&mut self) {
        // Exclusive access. Free every node still reachable, deduplicating:
        // the current sentinel (and, after an abandoned stalled enqueue, a
        // node parked in `enqueuers`) can also be named by a request array.
        let mut freed = std::collections::HashSet::new();
        let mut cur = self.head.load(Ordering::Relaxed); // ORDER: Drop has exclusive access.
        while !cur.is_null() {
            // SAFETY: `Drop` has exclusive access; every reachable node is
            // valid until deallocated below.
            let next = unsafe { (*cur).value.next.load(Ordering::Relaxed) }; // ORDER: Drop has exclusive access.
            if freed.insert(cur) {
                // SAFETY: the `freed` set guarantees each node (the sentinel
                // may be named twice) is freed exactly once.
                unsafe { Linked::dealloc(cur) };
            }
            cur = next;
        }
        for array in [&self.enqueuers, &self.deqself, &self.deqhelp] {
            for slot in array.iter() {
                let node = slot.load(Ordering::Relaxed); // ORDER: Drop has exclusive access.
                if !node.is_null() && freed.insert(node) {
                    // SAFETY: as above — deduplicated, exclusive access.
                    unsafe { Linked::dealloc(node) };
                }
            }
        }
    }
}

impl<R: Reclaimer> ConcurrentQueue<R> for CrTurnQueue<u64, R> {
    fn with_domain(domain: Arc<R>) -> Self {
        Self::new(domain)
    }

    fn enqueue(&self, handle: &mut R::Handle, value: u64) {
        CrTurnQueue::enqueue(self, handle, value)
    }

    fn dequeue(&self, handle: &mut R::Handle) -> Option<u64> {
        CrTurnQueue::dequeue(self, handle)
    }

    fn required_slots() -> usize {
        Self::REQUIRED_SLOTS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfe_reclaim::{Ebr, He, Hp, Ibr2Ge, Leak, ReclaimerConfig};
    use wfe_sync::atomic::{AtomicU64, Ordering::SeqCst};

    fn small_config(threads: usize) -> ReclaimerConfig {
        ReclaimerConfig {
            max_threads: threads,
            ..ReclaimerConfig::default()
        }
    }

    fn fifo_single_threaded<R: Reclaimer>() {
        let domain = R::with_config(small_config(4));
        let queue = CrTurnQueue::<u64, R>::new(Arc::clone(&domain));
        let mut handle = domain.register();
        assert!(queue.is_empty());
        assert_eq!(queue.dequeue(&mut handle), None);
        for i in 0..200 {
            queue.enqueue(&mut handle, i);
        }
        assert!(!queue.is_empty());
        for i in 0..200 {
            assert_eq!(queue.dequeue(&mut handle), Some(i));
        }
        assert_eq!(queue.dequeue(&mut handle), None);
        assert!(queue.is_empty());
    }

    #[test]
    fn fifo_order_under_every_scheme() {
        fifo_single_threaded::<He>();
        fifo_single_threaded::<Ebr>();
        fifo_single_threaded::<Hp>();
        fifo_single_threaded::<Ibr2Ge>();
        fifo_single_threaded::<Leak>();
    }

    #[test]
    fn interleaved_enqueue_dequeue_preserves_order() {
        let domain = He::with_config(small_config(2));
        let queue = CrTurnQueue::<u64, He>::new(Arc::clone(&domain));
        let mut handle = domain.register();
        let mut expected_front = 0u64;
        let mut next_value = 0u64;
        for round in 0..500u64 {
            queue.enqueue(&mut handle, next_value);
            next_value += 1;
            if round % 3 == 0 {
                assert_eq!(queue.dequeue(&mut handle), Some(expected_front));
                expected_front += 1;
            }
        }
        while let Some(v) = queue.dequeue(&mut handle) {
            assert_eq!(v, expected_front);
            expected_front += 1;
        }
        assert_eq!(expected_front, next_value);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_every_element() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 2_000;
        let domain = He::with_config(small_config(THREADS + 1));
        let queue = CrTurnQueue::<u64, He>::new(Arc::clone(&domain));
        let consumed_sum = AtomicU64::new(0);
        let consumed_count = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                let queue = &queue;
                let domain = Arc::clone(&domain);
                let consumed_sum = &consumed_sum;
                let consumed_count = &consumed_count;
                scope.spawn(move || {
                    let mut handle = domain.register();
                    for i in 1..=PER_THREAD {
                        queue.enqueue(&mut handle, t * PER_THREAD + i);
                        if i % 2 == 0 {
                            if let Some(v) = queue.dequeue(&mut handle) {
                                consumed_sum.fetch_add(v, SeqCst);
                                consumed_count.fetch_add(1, SeqCst);
                            }
                        }
                    }
                });
            }
        });
        let mut handle = domain.register();
        while let Some(v) = queue.dequeue(&mut handle) {
            consumed_sum.fetch_add(v, SeqCst);
            consumed_count.fetch_add(1, SeqCst);
        }
        let expected_sum: u64 = (0..THREADS as u64)
            .flat_map(|t| (1..=PER_THREAD).map(move |i| t * PER_THREAD + i))
            .sum();
        assert_eq!(consumed_count.load(SeqCst), THREADS as u64 * PER_THREAD);
        assert_eq!(consumed_sum.load(SeqCst), expected_sum);
    }

    #[test]
    fn per_thread_fifo_order_is_respected() {
        const THREADS: usize = 3;
        const PER_THREAD: u64 = 1_500;
        let domain = He::with_config(small_config(THREADS + 1));
        let queue = CrTurnQueue::<u64, He>::new(Arc::clone(&domain));
        std::thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                let queue = &queue;
                let domain = Arc::clone(&domain);
                scope.spawn(move || {
                    let mut handle = domain.register();
                    for i in 0..PER_THREAD {
                        queue.enqueue(&mut handle, (t << 32) | i);
                    }
                });
            }
        });
        let mut handle = domain.register();
        let mut last_seen = [None::<u64>; THREADS];
        while let Some(v) = queue.dequeue(&mut handle) {
            let t = (v >> 32) as usize;
            let seq = v & 0xFFFF_FFFF;
            if let Some(prev) = last_seen[t] {
                assert!(seq > prev, "thread {t} out of order: {seq} after {prev}");
            }
            last_seen[t] = Some(seq);
        }
        for (t, seen) in last_seen.iter().enumerate() {
            assert_eq!(seen.unwrap(), PER_THREAD - 1, "thread {t} lost elements");
        }
    }

    #[test]
    fn empty_dequeues_interleaved_with_concurrent_enqueues() {
        // Hammers the give-up path: consumers repeatedly observe an empty
        // queue while a producer races to refill it; no element may be lost
        // or duplicated.
        const ROUNDS: u64 = 2_000;
        let domain = He::with_config(small_config(3));
        let queue = CrTurnQueue::<u64, He>::new(Arc::clone(&domain));
        let consumed_sum = AtomicU64::new(0);
        let consumed_count = AtomicU64::new(0);
        std::thread::scope(|scope| {
            let producer_domain = Arc::clone(&domain);
            let producer_queue = &queue;
            scope.spawn(move || {
                let mut handle = producer_domain.register();
                for i in 1..=ROUNDS {
                    producer_queue.enqueue(&mut handle, i);
                }
            });
            for _ in 0..2 {
                let queue = &queue;
                let domain = Arc::clone(&domain);
                let consumed_sum = &consumed_sum;
                let consumed_count = &consumed_count;
                scope.spawn(move || {
                    let mut handle = domain.register();
                    while consumed_count.load(SeqCst) < ROUNDS {
                        if let Some(v) = queue.dequeue(&mut handle) {
                            consumed_sum.fetch_add(v, SeqCst);
                            consumed_count.fetch_add(1, SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(consumed_count.load(SeqCst), ROUNDS);
        assert_eq!(consumed_sum.load(SeqCst), ROUNDS * (ROUNDS + 1) / 2);
    }

    #[test]
    fn helpers_complete_a_stalled_enqueue() {
        // A thread publishes an enqueue request and stalls forever; the next
        // operation by any other thread appends its node.
        let domain = He::with_config(small_config(3));
        let queue = CrTurnQueue::<u64, He>::new(Arc::clone(&domain));
        let mut stalled = domain.register();
        let mut worker = domain.register();
        queue.stall_enqueue_publish(&mut stalled, 41);
        assert!(queue.is_empty(), "stalled request is not yet linked");
        queue.enqueue(&mut worker, 42);
        // Both elements are now present: the worker's helping pass appended
        // the stalled node on its way to (or right after) its own. Their
        // relative order is the turn order, which depends on thread ids, so
        // assert on the set.
        let mut got = vec![
            queue.dequeue(&mut worker).unwrap(),
            queue.dequeue(&mut worker).unwrap(),
        ];
        got.sort_unstable();
        assert_eq!(got, vec![41, 42]);
        assert_eq!(queue.dequeue(&mut worker), None);
    }

    #[test]
    fn helpers_grant_a_stalled_dequeue() {
        // A thread opens a dequeue request and stalls; another dequeuer's
        // turn-serving pass grants the stalled request *first* (it holds the
        // earlier turn), and the resumed operation just picks up the node.
        let domain = He::with_config(small_config(3));
        let queue = CrTurnQueue::<u64, He>::new(Arc::clone(&domain));
        let mut stalled = domain.register();
        let mut worker = domain.register();
        for i in 0..4 {
            queue.enqueue(&mut worker, i);
        }
        let ticket = queue.stall_dequeue_publish(&mut stalled);
        // The worker dequeues twice; its helping serves the stalled request's
        // turn as well, so between the stalled thread and the worker the
        // first three elements are consumed exactly once.
        let mut got = vec![
            queue.dequeue(&mut worker).unwrap(),
            queue.dequeue(&mut worker).unwrap(),
            queue.resume_dequeue(&mut stalled, ticket).unwrap(),
        ];
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(queue.dequeue(&mut worker), Some(3));
        assert_eq!(queue.dequeue(&mut worker), None);
    }
}
