//! Kogan-Petrank wait-free MPMC queue (PPoPP 2011).
//!
//! The "KP" workload of Figures 5a/5b and the headline client of the paper:
//! the original algorithm assumes a garbage collector, so — as the paper
//! points out — it could never before be run with *fully* wait-free manual
//! reclamation. Paired with WFE every operation of the queue is wait-free;
//! paired with the other schemes it keeps their (weaker) progress guarantee,
//! which is exactly the comparison Figure 5 makes.
//!
//! The algorithm uses *phase-based helping*: every operation publishes an
//! operation descriptor ([`OpDesc`]) with a monotonically increasing phase
//! number in a per-thread `state` slot; every operation first helps all
//! pending operations with a smaller-or-equal phase before returning.
//!
//! Two adaptations versus the GC-based original, both required for manual
//! reclamation (and used by the existing hazard-pointer ports):
//!
//! * descriptors are allocated through the reclamation scheme and retired by
//!   whichever thread replaces them in the `state` array;
//! * when a dequeue is finalised, the helper copies the dequeued **value**
//!   into the final descriptor, so the owner never dereferences the successor
//!   node after its operation completed (the successor may be retired by a
//!   faster dequeuer at any time).

use core::ptr;
use std::sync::Arc;
use wfe_sync::atomic::{AtomicI64, Ordering};

use wfe_reclaim::{Atomic, Guard, Handle, Linked, Protected, Reclaimer, Shield};

use crate::traits::ConcurrentQueue;

/// A queue node.
pub struct Node<T> {
    value: Option<T>,
    next: Atomic<Node<T>>,
    /// Thread id of the enqueuer (used by helpers to finalise its descriptor).
    enq_tid: usize,
    /// Thread id of the dequeuer that claimed this node's successor, or -1.
    deq_tid: AtomicI64,
}

/// An operation descriptor published in the per-thread `state` array.
pub struct OpDesc<T> {
    /// Phase number of the operation (helping priority).
    phase: u64,
    /// Whether the operation is still in progress.
    pending: bool,
    /// `true` for enqueue, `false` for dequeue.
    enqueue: bool,
    /// Enqueue: the node to append. Dequeue: the sentinel node that was
    /// dequeued past (null while pending / when the queue was empty).
    node: *mut Linked<Node<T>>,
    /// Dequeue only: the value handed to the owner by the finalising helper.
    value: Option<T>,
}

/// Kogan-Petrank wait-free queue, parameterised by the reclamation scheme.
pub struct KoganPetrankQueue<T, R: Reclaimer> {
    head: Atomic<Node<T>>,
    tail: Atomic<Node<T>>,
    /// One descriptor slot per thread id (`max_threads` of the domain).
    state: Box<[Atomic<OpDesc<T>>]>,
    domain: Arc<R>,
}

// SAFETY: nodes and descriptors hold `T` by value; all shared-pointer access goes through the reclamation protocol, so sending the
// structure is sending the `T`s it owns.
unsafe impl<T: Send, R: Reclaimer> Send for KoganPetrankQueue<T, R> {}
// SAFETY: every `&self` method is lock-free-safe by construction (the
// algorithm's own synchronisation); `T: Send` suffices because values
// are moved in/out, never shared by reference across threads.
unsafe impl<T: Send, R: Reclaimer> Sync for KoganPetrankQueue<T, R> {}

/// The four shields one operation (and all the helping it performs) needs:
/// the head/tail snapshot, its successor, the descriptor being examined and a
/// separate shield for descriptor re-checks (`is_still_pending`), which must
/// not displace the descriptor the caller is still reading.
struct KpShields<T, H: wfe_reclaim::RawHandle> {
    first: Shield<Node<T>, H>,
    next: Shield<Node<T>, H>,
    desc: Shield<OpDesc<T>, H>,
    desc_aux: Shield<OpDesc<T>, H>,
}

impl<T: Copy, R: Reclaimer> KoganPetrankQueue<T, R> {
    /// Reservation slots the queue needs per thread: the four shield roles
    /// (head/tail snapshot, successor, descriptor, descriptor re-checks).
    pub const REQUIRED_SLOTS: usize = 4;

    /// Leases the four shields of one operation.
    fn shields(handle: &R::Handle) -> KpShields<T, R::Handle> {
        let exhausted = "KoganPetrankQueue: reservation slots exhausted (needs four Shields)";
        KpShields {
            first: handle.shield().expect(exhausted),
            next: handle.shield().expect(exhausted),
            desc: handle.shield().expect(exhausted),
            desc_aux: handle.shield().expect(exhausted),
        }
    }

    /// Creates an empty queue guarded by `domain`. The queue supports thread
    /// ids up to the domain's `max_threads`.
    pub fn new(domain: Arc<R>) -> Self {
        debug_assert!(
            domain.config().slots_per_thread >= Self::REQUIRED_SLOTS,
            "KoganPetrankQueue needs {} reservation slots per thread, domain provides {}",
            Self::REQUIRED_SLOTS,
            domain.config().slots_per_thread,
        );
        let max_threads = domain.config().max_threads;
        let mut handle = domain.register();
        let sentinel = handle.alloc(Node {
            value: None,
            next: Atomic::null(),
            enq_tid: 0,
            deq_tid: AtomicI64::new(-1),
        });
        let state = (0..max_threads)
            .map(|_| {
                Atomic::new(handle.alloc(OpDesc {
                    phase: 0,
                    pending: false,
                    enqueue: true,
                    node: ptr::null_mut(),
                    value: None,
                }))
            })
            .collect();
        drop(handle);
        Self {
            head: Atomic::new(sentinel),
            tail: Atomic::new(sentinel),
            state,
            domain,
        }
    }

    /// The reclamation domain guarding this queue.
    pub fn domain(&self) -> &Arc<R> {
        &self.domain
    }

    /// Largest phase currently published, plus one.
    fn next_phase(&self, guard: &Guard<'_, R::Handle>, sh: &mut KpShields<T, R::Handle>) -> u64 {
        let mut max = 0;
        for slot in self.state.iter() {
            let desc = sh.desc_aux.protect(guard, slot, None);
            // SAFETY: `desc_aux` protects `desc`; it is re-protected only on
            // the next loop iteration, after this read.
            let phase = unsafe { desc.as_ref() }
                .expect("descriptors are never null")
                .phase;
            max = max.max(phase);
        }
        max + 1
    }

    /// Replaces `state[tid]`'s current descriptor `old` with `new`, retiring
    /// `old` on success and freeing `new` on failure. Returns whether the
    /// exchange happened.
    fn swap_desc(
        &self,
        guard: &Guard<'_, R::Handle>,
        tid: usize,
        old: Protected<'_, OpDesc<T>>,
        new: *mut Linked<OpDesc<T>>,
    ) -> bool {
        match self.state[tid].compare_exchange(
            old.as_raw(),
            new,
            Ordering::AcqRel, // ORDER: success publishes the descriptor swap; failure observes the winner.
            Ordering::Acquire,
        ) {
            Ok(_) => {
                // SAFETY: the CAS unlinked `old` from the only place that
                // publishes it, so it is unreachable and retired exactly once
                // (every replacement goes through this method).
                unsafe { old.retire_in(guard) };
                true
            }
            Err(_) => {
                // SAFETY: `new` was never published; freed exactly once.
                unsafe { Linked::dealloc(new) };
                false
            }
        }
    }

    fn is_still_pending(
        &self,
        guard: &Guard<'_, R::Handle>,
        sh: &mut KpShields<T, R::Handle>,
        tid: usize,
        phase: u64,
    ) -> bool {
        let desc = sh.desc_aux.protect(guard, &self.state[tid], None);
        // SAFETY: `desc_aux` protects `desc` and is not re-protected for the
        // rest of this function.
        let desc = unsafe { desc.as_ref() }.expect("descriptors are never null");
        desc.pending && desc.phase <= phase
    }

    /// Helps every pending operation whose phase is at most `phase`.
    fn help(&self, guard: &Guard<'_, R::Handle>, sh: &mut KpShields<T, R::Handle>, phase: u64) {
        for tid in 0..self.state.len() {
            let desc = sh.desc.protect(guard, &self.state[tid], None);
            let (pending, desc_phase, enqueue) = {
                // SAFETY: `sh.desc` protects `desc`; the helpers below only
                // re-protect it after this scope has copied the fields out.
                let desc = unsafe { desc.as_ref() }.expect("descriptors are never null");
                (desc.pending, desc.phase, desc.enqueue)
            };
            if pending && desc_phase <= phase {
                if enqueue {
                    self.help_enq(guard, sh, tid, phase);
                } else {
                    self.help_deq(guard, sh, tid, phase);
                }
            }
        }
    }

    fn help_enq(
        &self,
        guard: &Guard<'_, R::Handle>,
        sh: &mut KpShields<T, R::Handle>,
        tid: usize,
        phase: u64,
    ) {
        while self.is_still_pending(guard, sh, tid, phase) {
            let last = sh.first.protect(guard, &self.tail, None);
            // SAFETY: `sh.first` protects `last`; the descriptor reads below
            // go through `sh.desc`/`sh.desc_aux`, so `last_ref` stays pinned
            // until the next loop iteration.
            let last_ref = unsafe { last.as_ref() }.expect("the tail is never null");
            let next = last_ref.next.load(Ordering::Acquire); // ORDER: pairs with the AcqRel append of the successor.
                                                              // ORDER: tail re-validation; pairs with the AcqRel tail swing.
            if last.as_raw() != self.tail.load(Ordering::Acquire) {
                continue;
            }
            if next.is_null() {
                if self.is_still_pending(guard, sh, tid, phase) {
                    // Re-read the descriptor to fetch the node to append.
                    let desc = sh.desc.protect(guard, &self.state[tid], None);
                    // SAFETY: `sh.desc` protects `desc` and is not
                    // re-protected before this read.
                    let node = unsafe { desc.as_ref() }
                        .expect("descriptors are never null")
                        .node;
                    if node.is_null() {
                        continue;
                    }
                    if last_ref
                        .next
                        .compare_exchange(
                            ptr::null_mut(),
                            node,
                            Ordering::AcqRel, // ORDER: success publishes the appended node; failure observes the winning append.
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        self.help_finish_enq(guard, sh);
                        return;
                    }
                }
            } else {
                self.help_finish_enq(guard, sh);
            }
        }
    }

    fn help_finish_enq(&self, guard: &Guard<'_, R::Handle>, sh: &mut KpShields<T, R::Handle>) {
        let last = sh.first.protect(guard, &self.tail, None);
        // SAFETY: `last` and `next` each have their own shield (`sh.first` /
        // `sh.next`), neither re-protected for the rest of this function.
        let last_ref = unsafe { last.as_ref() }.expect("the tail is never null");
        let next = sh.next.protect(guard, &last_ref.next, Some(last));
        // SAFETY: as above — `sh.next` protects `next`.
        let Some(next_ref) = (unsafe { next.as_ref() }) else {
            return;
        };
        let enq_tid = next_ref.enq_tid;
        let cur_desc = sh.desc.protect(guard, &self.state[enq_tid], None);
        // ORDER: tail re-validation; pairs with the AcqRel tail swing.
        if last.as_raw() != self.tail.load(Ordering::Acquire) {
            return;
        }
        let (cur_phase, cur_node, cur_pending, cur_enqueue) = {
            // SAFETY: `sh.desc` protects `cur_desc`; it is not re-protected
            // before this scope copies the fields out.
            let desc = unsafe { cur_desc.as_ref() }.expect("descriptors are never null");
            (desc.phase, desc.node, desc.pending, desc.enqueue)
        };
        if cur_pending && cur_enqueue && cur_node == next.as_raw() {
            let new_desc = guard.alloc(OpDesc {
                phase: cur_phase,
                pending: false,
                enqueue: true,
                node: next.as_raw(),
                value: None,
            });
            self.swap_desc(guard, enq_tid, cur_desc, new_desc);
        }
        let _ = self.tail.compare_exchange(
            last.as_raw(),
            next.as_raw(),
            Ordering::AcqRel, // ORDER: success publishes the new tail; failure observes the winning swing.
            Ordering::Acquire,
        );
    }

    fn help_deq(
        &self,
        guard: &Guard<'_, R::Handle>,
        sh: &mut KpShields<T, R::Handle>,
        tid: usize,
        phase: u64,
    ) {
        while self.is_still_pending(guard, sh, tid, phase) {
            let first = sh.first.protect(guard, &self.head, None);
            // SAFETY: `sh.first` protects `first`; every later protect in
            // this iteration goes through `sh.desc`/`sh.desc_aux`/`sh.next`,
            // and the helpers that do re-protect `sh.first`
            // (`help_finish_enq`/`help_finish_deq`) run after `first_ref`'s
            // last use.
            let first_ref = unsafe { first.as_ref() }.expect("the head is never null");
            let last = self.tail.load(Ordering::Acquire); // ORDER: pairs with the AcqRel tail swing.
            let next = sh.next.protect(guard, &first_ref.next, Some(first));
            // ORDER: head re-validation; pairs with the AcqRel head swing.
            if first.as_raw() != self.head.load(Ordering::Acquire) {
                continue;
            }
            if first.as_raw() == last {
                if next.is_null() {
                    // Queue looks empty: finalise with an empty result.
                    let cur_desc = sh.desc.protect(guard, &self.state[tid], None);
                    // ORDER: tail re-check; pairs with the AcqRel tail swing.
                    if last != self.tail.load(Ordering::Acquire) {
                        continue;
                    }
                    if self.is_still_pending(guard, sh, tid, phase) {
                        // SAFETY: `sh.desc` protects `cur_desc` and is not
                        // re-protected before this read.
                        let cur_phase = unsafe { cur_desc.as_ref() }
                            .expect("descriptors are never null")
                            .phase;
                        let new_desc = guard.alloc(OpDesc {
                            phase: cur_phase,
                            pending: false,
                            enqueue: false,
                            node: ptr::null_mut(),
                            value: None,
                        });
                        self.swap_desc(guard, tid, cur_desc, new_desc);
                    }
                } else {
                    // Tail is lagging; finish the in-flight enqueue first.
                    self.help_finish_enq(guard, sh);
                }
            } else {
                let cur_desc = sh.desc.protect(guard, &self.state[tid], None);
                let (cur_phase, cur_node, cur_pending) = {
                    // SAFETY: `sh.desc` protects `cur_desc`; it is not
                    // re-protected before this scope copies the fields out.
                    let desc = unsafe { cur_desc.as_ref() }.expect("descriptors are never null");
                    (desc.phase, desc.node, desc.pending)
                };
                if !(cur_pending && cur_phase <= phase) {
                    break;
                }
                // ORDER: head re-validation; pairs with the AcqRel head swing.
                if first.as_raw() != self.head.load(Ordering::Acquire) {
                    continue;
                }
                if cur_node != first.as_raw() {
                    // Announce which sentinel this dequeue is working on.
                    let new_desc = guard.alloc(OpDesc {
                        phase: cur_phase,
                        pending: true,
                        enqueue: false,
                        node: first.as_raw(),
                        value: None,
                    });
                    if !self.swap_desc(guard, tid, cur_desc, new_desc) {
                        continue;
                    }
                }
                // Claim the sentinel for thread `tid` and finish the dequeue.
                let _ = first_ref.deq_tid.compare_exchange(
                    -1,
                    tid as i64,
                    Ordering::AcqRel, // ORDER: success publishes the claim; failure observes the winning claim.
                    Ordering::Acquire,
                );
                self.help_finish_deq(guard, sh);
            }
        }
    }

    fn help_finish_deq(&self, guard: &Guard<'_, R::Handle>, sh: &mut KpShields<T, R::Handle>) {
        let first = sh.first.protect(guard, &self.head, None);
        // SAFETY: `first` and `next` each have their own shield (`sh.first` /
        // `sh.next`), neither re-protected for the rest of this function.
        let first_ref = unsafe { first.as_ref() }.expect("the head is never null");
        let next = sh.next.protect(guard, &first_ref.next, Some(first));
        let deq_tid = first_ref.deq_tid.load(Ordering::Acquire); // ORDER: pairs with the AcqRel claim CAS on `deq_tid`.
        if deq_tid < 0 {
            return;
        }
        let tid = deq_tid as usize;
        let cur_desc = sh.desc.protect(guard, &self.state[tid], None);
        // ORDER: head re-validation; pairs with the AcqRel head swing.
        if first.as_raw() != self.head.load(Ordering::Acquire) {
            return;
        }
        // SAFETY: as above — `sh.next` protects `next`.
        let Some(next_ref) = (unsafe { next.as_ref() }) else {
            return;
        };
        let (cur_phase, cur_node, cur_pending, cur_enqueue) = {
            // SAFETY: `sh.desc` protects `cur_desc`; it is not re-protected
            // before this scope copies the fields out.
            let desc = unsafe { cur_desc.as_ref() }.expect("descriptors are never null");
            (desc.phase, desc.node, desc.pending, desc.enqueue)
        };
        if cur_pending && !cur_enqueue && cur_node == first.as_raw() {
            // Hand the dequeued value to the owner inside the descriptor so it
            // never has to touch `next` after the operation completes.
            let value = next_ref.value;
            let new_desc = guard.alloc(OpDesc {
                phase: cur_phase,
                pending: false,
                enqueue: false,
                node: first.as_raw(),
                value,
            });
            self.swap_desc(guard, tid, cur_desc, new_desc);
        }
        let _ = self.head.compare_exchange(
            first.as_raw(),
            next.as_raw(),
            Ordering::AcqRel, // ORDER: success publishes the new head; failure observes the winning swing.
            Ordering::Acquire,
        );
    }

    /// Appends `value` at the tail. Wait-free when the reclamation scheme is
    /// wait-free.
    pub fn enqueue(&self, handle: &mut R::Handle, value: T) {
        let mut sh = Self::shields(handle);
        let guard = handle.enter();
        let tid = guard.thread_id();
        let phase = self.next_phase(&guard, &mut sh);
        let node = guard.alloc(Node {
            value: Some(value),
            next: Atomic::null(),
            enq_tid: tid,
            deq_tid: AtomicI64::new(-1),
        });
        let desc = guard.alloc(OpDesc {
            phase,
            pending: true,
            enqueue: true,
            node,
            value: None,
        });
        self.publish_own_desc(&guard, &mut sh, tid, desc);
        self.help(&guard, &mut sh, phase);
        self.help_finish_enq(&guard, &mut sh);
    }

    /// Removes the element at the head, if any. Wait-free when the reclamation
    /// scheme is wait-free.
    pub fn dequeue(&self, handle: &mut R::Handle) -> Option<T> {
        let mut sh = Self::shields(handle);
        let guard = handle.enter();
        let tid = guard.thread_id();
        let phase = self.next_phase(&guard, &mut sh);
        let desc = guard.alloc(OpDesc {
            phase,
            pending: true,
            enqueue: false,
            node: ptr::null_mut(),
            value: None,
        });
        self.publish_own_desc(&guard, &mut sh, tid, desc);
        self.help(&guard, &mut sh, phase);
        self.help_finish_deq(&guard, &mut sh);

        // Our operation is finalised; read the outcome from our descriptor.
        let final_desc = sh.desc.protect(&guard, &self.state[tid], None);
        // SAFETY: `sh.desc` protects `final_desc` and is not re-protected
        // for the rest of this function.
        let final_ref = unsafe { final_desc.as_ref() }.expect("descriptors are never null");
        let (node, value) = (final_ref.node, final_ref.value);
        if node.is_null() {
            // Queue was empty.
            None
        } else {
            // The old sentinel is ours to retire: helpers only ever read it.
            // SAFETY: the finalised descriptor names the sentinel our dequeue
            // consumed; only the owning thread retires it, exactly once.
            unsafe { Protected::from_unlinked(node).retire_in(&guard) };
            value
        }
    }

    /// Installs the descriptor for this thread's own new operation, retiring
    /// the previous one. A concurrent helper may finalise the *previous*
    /// operation at the same time, so at most one retry is needed.
    fn publish_own_desc(
        &self,
        guard: &Guard<'_, R::Handle>,
        sh: &mut KpShields<T, R::Handle>,
        tid: usize,
        desc: *mut Linked<OpDesc<T>>,
    ) {
        loop {
            let old = sh.desc.protect(guard, &self.state[tid], None);
            if self.state[tid]
                .compare_exchange(old.as_raw(), desc, Ordering::AcqRel, Ordering::Acquire) // ORDER: success publishes the descriptor; failure retries against the current one.
                .is_ok()
            {
                // SAFETY: our CAS unlinked `old` from the descriptor slot; it
                // is retired exactly once (all replacements CAS this slot).
                unsafe { old.retire_in(guard) };
                return;
            }
        }
    }

    /// Returns `true` if the queue appeared empty at the moment of the call.
    ///
    /// Takes the calling thread's handle because answering requires reading
    /// the head sentinel's `next` field, and the sentinel may be retired by a
    /// concurrent dequeue — the read must be protected like any other.
    pub fn is_empty(&self, handle: &mut R::Handle) -> bool {
        let mut head_shield: Shield<Node<T>, R::Handle> = handle
            .shield()
            .expect("KoganPetrankQueue: reservation slots exhausted");
        let guard = handle.enter();
        let head = head_shield.protect(&guard, &self.head, None);
        // SAFETY: `head_shield` is not re-protected for the rest of this
        // function.
        unsafe { head.as_ref() }
            .expect("the head is never null")
            .next
            .load(Ordering::Acquire) // ORDER: pairs with the AcqRel append of the successor.
            .is_null()
    }
}

impl<T, R: Reclaimer> Drop for KoganPetrankQueue<T, R> {
    fn drop(&mut self) {
        // Exclusive access: free the nodes still in the queue and the final
        // descriptor of every thread slot.
        let mut cur = self.head.load(Ordering::Relaxed); // ORDER: Drop has exclusive access.
        while !cur.is_null() {
            // SAFETY: `Drop` has exclusive access; every queued node is
            // valid and freed exactly once.
            let next = unsafe { (*cur).value.next.load(Ordering::Relaxed) }; // ORDER: Drop has exclusive access.
                                                                             // SAFETY: as above — exclusive access, freed exactly once.
            unsafe { Linked::dealloc(cur) };
            cur = next;
        }
        for slot in self.state.iter() {
            let desc = slot.load(Ordering::Relaxed); // ORDER: Drop has exclusive access.
            if !desc.is_null() {
                // SAFETY: the final descriptor of each slot is owned by the
                // queue alone once no operation is in flight.
                unsafe { Linked::dealloc(desc) };
            }
        }
    }
}

impl<R: Reclaimer> ConcurrentQueue<R> for KoganPetrankQueue<u64, R> {
    fn with_domain(domain: Arc<R>) -> Self {
        Self::new(domain)
    }

    fn enqueue(&self, handle: &mut R::Handle, value: u64) {
        KoganPetrankQueue::enqueue(self, handle, value)
    }

    fn dequeue(&self, handle: &mut R::Handle) -> Option<u64> {
        KoganPetrankQueue::dequeue(self, handle)
    }

    fn required_slots() -> usize {
        Self::REQUIRED_SLOTS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfe_reclaim::{Ebr, He, Hp, Ibr2Ge, ReclaimerConfig};
    use wfe_sync::atomic::{AtomicU64, Ordering::SeqCst};

    fn small_config(threads: usize) -> ReclaimerConfig {
        ReclaimerConfig {
            max_threads: threads,
            ..ReclaimerConfig::default()
        }
    }

    fn fifo_single_threaded<R: Reclaimer>() {
        let domain = R::with_config(small_config(4));
        let queue = KoganPetrankQueue::<u64, R>::new(Arc::clone(&domain));
        let mut handle = domain.register();
        assert!(queue.is_empty(&mut handle));
        assert_eq!(queue.dequeue(&mut handle), None);
        for i in 0..200 {
            queue.enqueue(&mut handle, i);
        }
        assert!(!queue.is_empty(&mut handle));
        for i in 0..200 {
            assert_eq!(queue.dequeue(&mut handle), Some(i));
        }
        assert_eq!(queue.dequeue(&mut handle), None);
        assert!(queue.is_empty(&mut handle));
    }

    #[test]
    fn fifo_order_under_every_scheme() {
        fifo_single_threaded::<He>();
        fifo_single_threaded::<Ebr>();
        fifo_single_threaded::<Hp>();
        fifo_single_threaded::<Ibr2Ge>();
    }

    #[test]
    fn interleaved_enqueue_dequeue_preserves_order() {
        let domain = He::with_config(small_config(2));
        let queue = KoganPetrankQueue::<u64, He>::new(Arc::clone(&domain));
        let mut handle = domain.register();
        let mut expected_front = 0u64;
        let mut next_value = 0u64;
        for round in 0..500u64 {
            queue.enqueue(&mut handle, next_value);
            next_value += 1;
            if round % 3 == 0 {
                assert_eq!(queue.dequeue(&mut handle), Some(expected_front));
                expected_front += 1;
            }
        }
        while let Some(v) = queue.dequeue(&mut handle) {
            assert_eq!(v, expected_front);
            expected_front += 1;
        }
        assert_eq!(expected_front, next_value);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_every_element() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 2_000;
        let domain = He::with_config(small_config(THREADS + 1));
        let queue = KoganPetrankQueue::<u64, He>::new(Arc::clone(&domain));
        let consumed_sum = AtomicU64::new(0);
        let consumed_count = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                let queue = &queue;
                let domain = Arc::clone(&domain);
                let consumed_sum = &consumed_sum;
                let consumed_count = &consumed_count;
                scope.spawn(move || {
                    let mut handle = domain.register();
                    for i in 1..=PER_THREAD {
                        queue.enqueue(&mut handle, t * PER_THREAD + i);
                        if i % 2 == 0 {
                            if let Some(v) = queue.dequeue(&mut handle) {
                                consumed_sum.fetch_add(v, SeqCst);
                                consumed_count.fetch_add(1, SeqCst);
                            }
                        }
                    }
                });
            }
        });
        let mut handle = domain.register();
        while let Some(v) = queue.dequeue(&mut handle) {
            consumed_sum.fetch_add(v, SeqCst);
            consumed_count.fetch_add(1, SeqCst);
        }
        let expected_sum: u64 = (0..THREADS as u64)
            .flat_map(|t| (1..=PER_THREAD).map(move |i| t * PER_THREAD + i))
            .sum();
        assert_eq!(consumed_count.load(SeqCst), THREADS as u64 * PER_THREAD);
        assert_eq!(consumed_sum.load(SeqCst), expected_sum);
    }

    #[test]
    fn per_thread_fifo_order_is_respected() {
        // Elements enqueued by the same thread must be dequeued in order.
        const THREADS: usize = 3;
        const PER_THREAD: u64 = 1_500;
        let domain = He::with_config(small_config(THREADS + 1));
        let queue = KoganPetrankQueue::<u64, He>::new(Arc::clone(&domain));
        std::thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                let queue = &queue;
                let domain = Arc::clone(&domain);
                scope.spawn(move || {
                    let mut handle = domain.register();
                    for i in 0..PER_THREAD {
                        queue.enqueue(&mut handle, (t << 32) | i);
                    }
                });
            }
        });
        let mut handle = domain.register();
        let mut last_seen = [None::<u64>; THREADS];
        while let Some(v) = queue.dequeue(&mut handle) {
            let t = (v >> 32) as usize;
            let seq = v & 0xFFFF_FFFF;
            if let Some(prev) = last_seen[t] {
                assert!(seq > prev, "thread {t} out of order: {seq} after {prev}");
            }
            last_seen[t] = Some(seq);
        }
        for (t, seen) in last_seen.iter().enumerate() {
            assert_eq!(seen.unwrap(), PER_THREAD - 1, "thread {t} lost elements");
        }
    }
}
