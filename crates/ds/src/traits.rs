//! Uniform interfaces the benchmark harness is written against.
//!
//! The paper's evaluation drives every data structure through an abstract
//! key-value interface (`insert`, `delete`, `get`, `put`) and every queue
//! through `enqueue`/`dequeue`. These traits are that interface.
//!
//! Implementations are written against the safe guard API: one operation
//! leases [`required_slots`](ConcurrentMap::required_slots) shields from the
//! handle, enters a [`Guard`](wfe_reclaim::Guard) bracket and performs every
//! hazardous read through [`Shield::protect`](wfe_reclaim::Shield::protect).
//! `required_slots` is therefore exactly the number of simultaneously-leased
//! shields — domains must be configured with at least that many
//! `slots_per_thread`, which the structures assert at construction. The
//! shields are leased from the handle *passed into the operation*, so a
//! caller that parks its own long-lived [`Shield`](wfe_reclaim::Shield)s on
//! that handle must leave `required_slots` slots free or operations panic
//! with a "reservation slots exhausted" message (instead of silently
//! corrupting a reservation, as a stray raw index used to).

use std::sync::Arc;

use wfe_reclaim::Reclaimer;

/// Service-level counters a map exposes to the kv-service figure.
///
/// Fixed-shape structures report the all-zero default; resizable structures
/// (the split-ordered [`ResizableHashMap`](crate::ResizableHashMap)) report
/// their live geometry.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MapServiceStats {
    /// Data entries per bucket (`len / buckets`); `0.0` when the structure
    /// has no bucket geometry.
    pub load_factor: f64,
    /// Completed bucket-array doublings.
    pub resizes: u64,
    /// Cumulative bucket slots carried from superseded arrays into their
    /// replacements.
    pub migrated_buckets: u64,
}

/// A concurrent set/map with `u64` keys and `u64` values.
pub trait ConcurrentMap<R: Reclaimer>: Send + Sync + 'static {
    /// Creates an instance backed by `domain`.
    fn with_domain(domain: Arc<R>) -> Self;

    /// Inserts `key → value`; returns `false` if the key was already present.
    fn insert(&self, handle: &mut R::Handle, key: u64, value: u64) -> bool;

    /// Removes `key`; returns `true` if it was present.
    fn remove(&self, handle: &mut R::Handle, key: u64) -> bool;

    /// Looks up `key`.
    fn get(&self, handle: &mut R::Handle, key: u64) -> Option<u64>;

    /// Number of reservation slots the structure needs per operation.
    /// Domains must be configured with at least this many `slots_per_thread`.
    fn required_slots() -> usize {
        8
    }

    /// Heap bytes of one reclaimable node (header included), so gauges
    /// counted in blocks can be reported in bytes. The default assumes the
    /// smallest payload the harness uses; structures with richer nodes
    /// override it with their real node size.
    fn node_bytes() -> usize {
        core::mem::size_of::<wfe_reclaim::Linked<u64>>()
    }

    /// Service statistics for the kv-service figure. Structures without
    /// resize machinery keep the all-zero default.
    fn service_stats(&self) -> MapServiceStats {
        MapServiceStats::default()
    }
}

/// A concurrent FIFO queue with `u64` elements.
pub trait ConcurrentQueue<R: Reclaimer>: Send + Sync + 'static {
    /// Creates an instance backed by `domain`.
    fn with_domain(domain: Arc<R>) -> Self;

    /// Appends `value` to the tail.
    fn enqueue(&self, handle: &mut R::Handle, value: u64);

    /// Removes the head element, if any.
    fn dequeue(&self, handle: &mut R::Handle) -> Option<u64>;

    /// Number of reservation slots the structure needs per operation.
    fn required_slots() -> usize {
        8
    }
}
