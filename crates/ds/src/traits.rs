//! Uniform interfaces the benchmark harness is written against.
//!
//! The paper's evaluation drives every data structure through an abstract
//! key-value interface (`insert`, `delete`, `get`, `put`) and every queue
//! through `enqueue`/`dequeue`. These traits are that interface.

use std::sync::Arc;

use wfe_reclaim::Reclaimer;

/// A concurrent set/map with `u64` keys and `u64` values.
pub trait ConcurrentMap<R: Reclaimer>: Send + Sync + 'static {
    /// Creates an instance backed by `domain`.
    fn with_domain(domain: Arc<R>) -> Self;

    /// Inserts `key → value`; returns `false` if the key was already present.
    fn insert(&self, handle: &mut R::Handle, key: u64, value: u64) -> bool;

    /// Removes `key`; returns `true` if it was present.
    fn remove(&self, handle: &mut R::Handle, key: u64) -> bool;

    /// Looks up `key`.
    fn get(&self, handle: &mut R::Handle, key: u64) -> Option<u64>;

    /// Number of reservation slots the structure needs per operation.
    /// Domains must be configured with at least this many `slots_per_thread`.
    fn required_slots() -> usize {
        8
    }
}

/// A concurrent FIFO queue with `u64` elements.
pub trait ConcurrentQueue<R: Reclaimer>: Send + Sync + 'static {
    /// Creates an instance backed by `domain`.
    fn with_domain(domain: Arc<R>) -> Self;

    /// Appends `value` to the tail.
    fn enqueue(&self, handle: &mut R::Handle, value: u64);

    /// Removes the head element, if any.
    fn dequeue(&self, handle: &mut R::Handle) -> Option<u64>;

    /// Number of reservation slots the structure needs per operation.
    fn required_slots() -> usize {
        8
    }
}
