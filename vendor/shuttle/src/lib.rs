//! Minimal offline stand-in for the
//! [`shuttle`](https://crates.io/crates/shuttle) randomized concurrency
//! tester — the deterministic virtual scheduler behind the suite's
//! `wfe_model` builds.
//!
//! The build container has no network access, so (like `vendor/criterion`
//! and `vendor/proptest`) the workspace vendors the subset it needs:
//!
//! * cooperative **virtual threads** ([`thread::spawn`] /
//!   [`thread::JoinHandle`]) scheduled one-at-a-time, with an interleaving
//!   point before every shared-memory operation (the `wfe-sync` model
//!   atomics call [`point`]),
//! * a seeded, **replayable randomized scheduler** ([`check_random`]) and a
//!   PCT-flavored priority scheduler ([`check_pct`]) — a failing schedule
//!   panics with the seed that reproduces it, and `WFE_MODEL_SEED=<seed>`
//!   replays exactly that schedule,
//! * a pluggable **bounded-exhaustive strategy** ([`explore`]) enumerating
//!   every schedule with at most `preemption_bound` preemptions, for tiny
//!   cores.
//!
//! The memory model explored is sequential consistency: the baton handoff
//! between virtual threads orders their steps, so the checker enumerates
//! interleavings, not weak-memory reorderings (the paper's pseudo-code is
//! specified under SC, so that is the right level for its invariants).
//!
//! ```
//! use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
//! use std::sync::Arc;
//!
//! shuttle::check_random(
//!     || {
//!         let counter = Arc::new(AtomicUsize::new(0));
//!         let c = Arc::clone(&counter);
//!         let t = shuttle::thread::spawn(move || {
//!             shuttle::point(); // interleaving point before the op
//!             c.fetch_add(1, SeqCst);
//!         });
//!         shuttle::point();
//!         counter.fetch_add(1, SeqCst);
//!         t.join().unwrap();
//!         assert_eq!(counter.load(SeqCst), 2);
//!     },
//!     100,
//! );
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod runtime;
mod scheduler;

use std::sync::{Arc, Mutex};

use scheduler::{derive_seed, DfsScheduler, DfsState, PctScheduler, RandomScheduler, Scheduler};

/// How a batch of schedules is configured. See [`check_with_config`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of schedules to run (ignored when `WFE_MODEL_SEED` pins one).
    pub schedules: usize,
    /// Base seed: schedule `i` runs under `derive(seed, i)`, so one u64
    /// reproduces any schedule of the batch.
    pub seed: u64,
    /// Abort a schedule after this many interleaving points (livelock guard).
    pub max_steps: u64,
    /// `Some(depth)` switches from uniform random to the PCT-flavored
    /// priority scheduler with `depth` priority-change points.
    pub pct_depth: Option<usize>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            schedules: 10_000,
            seed: 0x5EED_CAFE,
            max_steps: 1_000_000,
            pct_depth: None,
        }
    }
}

/// The environment variable that replays one exact schedule: set it to the
/// seed printed by a failure report.
pub const SEED_ENV: &str = "WFE_MODEL_SEED";

/// Overrides the schedule count of every `check_*` call (e.g. to shorten CI).
pub const SCHEDULES_ENV: &str = "WFE_MODEL_SCHEDULES";

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

fn effective_schedules(configured: usize) -> usize {
    env_u64(SCHEDULES_ENV)
        .map(|n| n as usize)
        .unwrap_or(configured)
        .max(1)
}

fn make_scheduler(config: &Config, seed: u64) -> Box<dyn Scheduler> {
    match config.pct_depth {
        Some(depth) => Box::new(PctScheduler::new(seed, depth, 1_000)),
        None => Box::new(RandomScheduler::new(seed)),
    }
}

/// Runs `f` under up to `config.schedules` random (or PCT) schedules and
/// returns the first failure as `(seed, report)` instead of panicking.
///
/// This is the primitive behind [`check_with_config`]; tests that *expect* a
/// failure (e.g. a seeded bug that a de-versioned mutant must exhibit) use it
/// directly and assert on `Some`. [`SCHEDULES_ENV`] deliberately does *not*
/// rescale the budget here — an explicit search budget is part of what such
/// a test asserts — but [`SEED_ENV`] still pins a single exact schedule.
pub fn search_for_failure(
    config: Config,
    f: impl Fn() + Send + Sync + 'static,
) -> Option<(u64, String)> {
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    if let Some(seed) = env_u64(SEED_ENV) {
        let (_, result) = runtime::run_schedule(make_scheduler(&config, seed), config.max_steps, f);
        return result.err().map(|report| (seed, report));
    }
    for index in 0..config.schedules.max(1) {
        let seed = derive_seed(config.seed, index as u64);
        let (_, result) = runtime::run_schedule(
            make_scheduler(&config, seed),
            config.max_steps,
            Arc::clone(&f),
        );
        if let Err(report) = result {
            return Some((seed, report));
        }
    }
    None
}

/// Runs `f` under `config` (with [`SCHEDULES_ENV`] rescaling the batch);
/// panics with a replayable seed on the first failing schedule.
pub fn check_with_config(mut config: Config, f: impl Fn() + Send + Sync + 'static) {
    config.schedules = effective_schedules(config.schedules);
    if let Some((seed, report)) = search_for_failure(config, f) {
        panic!(
            "model schedule failed under seed {seed}: {report}\n\
             replay this exact schedule with {SEED_ENV}={seed}"
        );
    }
}

/// Runs `f` under `schedules` uniformly random schedules (seeded, replayable).
pub fn check_random(f: impl Fn() + Send + Sync + 'static, schedules: usize) {
    check_with_config(
        Config {
            schedules,
            ..Config::default()
        },
        f,
    );
}

/// Runs `f` under `schedules` PCT-flavored schedules with `depth` random
/// priority-change points.
pub fn check_pct(f: impl Fn() + Send + Sync + 'static, schedules: usize, depth: usize) {
    check_with_config(
        Config {
            schedules,
            pct_depth: Some(depth),
            ..Config::default()
        },
        f,
    );
}

/// Runs exactly one schedule: the strategy described by `config` driven by
/// the *per-schedule* `seed` a failure report printed. Returns the failure
/// report, if any — this is the programmatic form of setting [`SEED_ENV`],
/// for tests that assert a seed reproduces (or no longer reproduces) a bug.
pub fn run_seed(
    config: &Config,
    seed: u64,
    f: impl Fn() + Send + Sync + 'static,
) -> Option<String> {
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let (_, result) = runtime::run_schedule(make_scheduler(config, seed), config.max_steps, f);
    result.err()
}

/// Replays the single schedule identified by `seed` (as printed by a failure
/// report of the default random strategy), panicking with the same report if
/// it still fails. For PCT-discovered seeds use [`run_seed`] with the same
/// [`Config`] the search ran under — the seed drives the strategy, so replay
/// and search must agree on it.
pub fn replay(f: impl Fn() + Send + Sync + 'static, seed: u64) {
    if let Some(report) = run_seed(&Config::default(), seed, f) {
        panic!("model schedule failed under seed {seed}: {report}");
    }
}

/// Exhaustively enumerates every schedule of `f` with at most
/// `preemption_bound` preemptions (capped at `max_schedules`), panicking on
/// the first failure. Returns `(schedules_run, explored_everything)`.
///
/// Only tractable for tiny cores — a handful of virtual threads, a few dozen
/// interleaving points — which is exactly the "small cores" the model suite
/// drives (WCAS, the type-stable stack, the shield lease table).
pub fn explore(
    f: impl Fn() + Send + Sync + 'static,
    preemption_bound: usize,
    max_schedules: usize,
) -> (usize, bool) {
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let state = Arc::new(Mutex::new(DfsState::new(preemption_bound)));
    let max_steps = Config::default().max_steps;
    loop {
        let driver = Box::new(DfsScheduler::new(Arc::clone(&state)));
        let (_, result) = runtime::run_schedule(driver, max_steps, Arc::clone(&f));
        if let Err(report) = result {
            let n = state.lock().unwrap().schedules;
            panic!("exhaustive exploration failed on schedule #{n}: {report}");
        }
        let mut st = state.lock().unwrap();
        let keep_going = st.advance();
        if !keep_going {
            return (st.schedules, true);
        }
        if st.schedules >= max_schedules {
            return (st.schedules, false);
        }
    }
}

/// One interleaving point: hands the scheduling baton to whichever runnable
/// virtual thread the strategy picks. **No-op outside a model execution**, so
/// code instrumented with `point()` (the `wfe-sync` model atomics) still runs
/// normally in ordinary tests compiled with `--cfg wfe_model`.
#[inline]
pub fn point() {
    if let Some((exec, id)) = runtime::current_ctx() {
        exec.point(id, false);
    }
}

/// Whether the calling OS thread is currently a virtual thread of a schedule.
#[inline]
pub fn in_execution() -> bool {
    runtime::current_ctx().is_some()
}

/// Virtual-thread analogues of `std::thread`.
pub mod thread {
    use std::any::Any;
    use std::sync::{Arc, Mutex};

    use crate::runtime;

    /// Result of joining a virtual thread, mirroring `std::thread::Result`.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle to a spawned virtual thread. Unlike `std`, dropping it without
    /// joining is fine — the schedule keeps running the thread to completion.
    pub struct JoinHandle<T> {
        id: usize,
        result: Arc<Mutex<Option<T>>>,
    }

    impl<T> JoinHandle<T> {
        /// Blocks the calling virtual thread until this one finishes.
        /// Returns `Err` if the target panicked.
        pub fn join(self) -> Result<T> {
            let (exec, me) = runtime::current_ctx()
                .expect("shuttle::thread::JoinHandle::join outside a model execution");
            exec.join_wait(me, self.id);
            match self.result.lock().unwrap().take() {
                Some(value) => Ok(value),
                None => Err(Box::new("virtual thread panicked")),
            }
        }
    }

    /// Spawns a new virtual thread. Must be called from inside a schedule
    /// (i.e. under one of the `check_*` entry points).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (exec, me) =
            runtime::current_ctx().expect("shuttle::thread::spawn outside a model execution");
        let id = exec.register_thread();
        let result = Arc::new(Mutex::new(None));
        let result_slot = Arc::clone(&result);
        let exec_child = Arc::clone(&exec);
        let os = std::thread::spawn(move || {
            let body_exec = Arc::clone(&exec_child);
            runtime::vthread_main(body_exec, id, move || {
                let value = f();
                *result_slot.lock().unwrap() = Some(value);
            });
        });
        exec.push_os_handle(os);
        // The spawn itself is an interleaving point: the child may run first.
        exec.point(me, false);
        JoinHandle { id, result }
    }

    /// Cooperative yield: an interleaving point that asks the scheduler to
    /// prefer another runnable thread. No-op outside a model execution.
    pub fn yield_now() {
        if let Some((exec, id)) = runtime::current_ctx() {
            exec.point(id, true);
        }
    }
}

/// Spin-loop analogue of `std::hint`.
pub mod hint {
    use crate::runtime;

    /// Under the model a spin hint is a yield-flavored interleaving point
    /// (spinning without switching would explore nothing); outside it is a
    /// real `spin_loop` hint.
    #[inline]
    pub fn spin_loop() {
        match runtime::current_ctx() {
            Some((exec, id)) => exec.point(id, true),
            None => std::hint::spin_loop(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};

    #[test]
    fn point_is_a_noop_outside_executions() {
        point();
        assert!(!in_execution());
        hint::spin_loop();
        thread::yield_now();
    }

    #[test]
    fn single_thread_schedule_runs_to_completion() {
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        check_random(
            move || {
                assert!(in_execution());
                point();
                r.fetch_add(1, SeqCst);
            },
            3,
        );
        assert_eq!(ran.load(SeqCst), 3);
    }

    #[test]
    fn spawned_threads_interleave_and_join() {
        check_random(
            || {
                let counter = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..3)
                    .map(|_| {
                        let c = Arc::clone(&counter);
                        thread::spawn(move || {
                            for _ in 0..4 {
                                point();
                                c.fetch_add(1, SeqCst);
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                assert_eq!(counter.load(SeqCst), 12);
            },
            200,
        );
    }

    #[test]
    fn a_racy_assertion_is_found_and_reported_with_a_seed() {
        // Classic lost-update shape: both threads read, both write; the
        // scheduler must find the interleaving where an update is lost.
        let failure = search_for_failure(
            Config {
                schedules: 2_000,
                ..Config::default()
            },
            || {
                let cell = Arc::new(AtomicUsize::new(0));
                let t = {
                    let cell = Arc::clone(&cell);
                    thread::spawn(move || {
                        point();
                        let v = cell.load(SeqCst);
                        point();
                        cell.store(v + 1, SeqCst);
                    })
                };
                point();
                let v = cell.load(SeqCst);
                point();
                cell.store(v + 1, SeqCst);
                t.join().unwrap();
                assert_eq!(cell.load(SeqCst), 2, "lost update");
            },
        );
        let (seed, report) = failure.expect("the lost update must be discoverable");
        assert!(report.contains("lost update"), "report: {report}");

        // The reported seed is a standalone per-schedule seed: running it
        // directly must reproduce the exact same failing schedule, twice.
        let run = |seed: u64| {
            let (_, result) = crate::runtime::run_schedule(
                Box::new(crate::scheduler::RandomScheduler::new(seed)),
                1_000_000,
                Arc::new(|| {
                    let cell = Arc::new(AtomicUsize::new(0));
                    let t = {
                        let cell = Arc::clone(&cell);
                        thread::spawn(move || {
                            point();
                            let v = cell.load(SeqCst);
                            point();
                            cell.store(v + 1, SeqCst);
                        })
                    };
                    point();
                    let v = cell.load(SeqCst);
                    point();
                    cell.store(v + 1, SeqCst);
                    t.join().unwrap();
                    assert_eq!(cell.load(SeqCst), 2, "lost update");
                }),
            );
            result.err()
        };
        let first = run(seed).expect("the reported seed must reproduce the failure");
        let second = run(seed).expect("replaying the seed must fail again");
        assert!(first.contains("lost update"));
        assert_eq!(first, second, "replays of one seed must be identical");
    }

    #[test]
    fn deadlock_is_detected() {
        // A thread joining itself can never finish... simulate with two
        // threads joining each other via a shared handle is not expressible;
        // instead: the main thread joins a child that spins forever on a
        // condition only the main thread could set — all threads blocked is
        // not reachable with spin loops, so use the step bound as the
        // livelock guard instead.
        let failure = search_for_failure(
            Config {
                schedules: 1,
                max_steps: 500,
                ..Config::default()
            },
            || {
                let t = thread::spawn(move || loop {
                    hint::spin_loop();
                });
                t.join().unwrap();
            },
        );
        let (_, report) = failure.expect("the spin livelock must hit the step bound");
        assert!(report.contains("interleaving points"), "report: {report}");
    }

    #[test]
    fn exhaustive_exploration_covers_tiny_cores() {
        let (schedules, complete) = explore(
            || {
                let cell = Arc::new(AtomicUsize::new(0));
                let t = {
                    let cell = Arc::clone(&cell);
                    thread::spawn(move || {
                        point();
                        cell.fetch_add(1, SeqCst);
                    })
                };
                point();
                cell.fetch_add(1, SeqCst);
                t.join().unwrap();
                assert_eq!(cell.load(SeqCst), 2);
            },
            2,
            10_000,
        );
        assert!(complete, "tiny core must be fully explorable");
        assert!(schedules > 1, "more than one interleaving must exist");
    }

    #[test]
    fn exhaustive_exploration_finds_the_lost_update() {
        let found = std::panic::catch_unwind(|| {
            explore(
                || {
                    let cell = Arc::new(AtomicUsize::new(0));
                    let t = {
                        let cell = Arc::clone(&cell);
                        thread::spawn(move || {
                            point();
                            let v = cell.load(SeqCst);
                            point();
                            cell.store(v + 1, SeqCst);
                        })
                    };
                    point();
                    let v = cell.load(SeqCst);
                    point();
                    cell.store(v + 1, SeqCst);
                    t.join().unwrap();
                    assert_eq!(cell.load(SeqCst), 2, "lost update");
                },
                2,
                100_000,
            )
        });
        assert!(found.is_err(), "DFS must hit the failing interleaving");
    }

    #[test]
    fn exploration_terminates_on_yield_spin_loops() {
        // A spin-wait that yields must not be an infinite DFS subtree: the
        // yield steers the exploration to the thread that can make progress.
        let (_, complete) = explore(
            || {
                let flag = Arc::new(AtomicUsize::new(0));
                let t = {
                    let flag = Arc::clone(&flag);
                    thread::spawn(move || {
                        point();
                        flag.store(1, SeqCst);
                    })
                };
                while flag.load(SeqCst) == 0 {
                    thread::yield_now();
                }
                t.join().unwrap();
            },
            2,
            10_000,
        );
        assert!(complete, "the yield-spin core must be fully explorable");
    }

    #[test]
    fn pct_schedules_also_interleave_correctly() {
        check_pct(
            || {
                let counter = Arc::new(AtomicUsize::new(0));
                let c = Arc::clone(&counter);
                let t = thread::spawn(move || {
                    point();
                    c.fetch_add(1, SeqCst);
                });
                point();
                counter.fetch_add(1, SeqCst);
                t.join().unwrap();
                assert_eq!(counter.load(SeqCst), 2);
            },
            200,
            3,
        );
    }
}
