//! The execution engine: cooperative virtual threads over OS threads.
//!
//! One [`Execution`] is one *schedule*: the closure under test runs as
//! virtual thread 0, and every `shuttle::thread::spawn` adds another virtual
//! thread. Although each virtual thread is backed by a real OS thread, only
//! one of them runs at any moment — every other thread is parked on the
//! execution's condition variable. At each *interleaving point*
//! ([`crate::point`], called by the `wfe-sync` model atomics before every
//! shared-memory operation) the running thread hands the baton to whichever
//! runnable thread the active [`Scheduler`](crate::scheduler::Scheduler)
//! picks. The scheduler's choices are therefore the *only* source of
//! nondeterminism, which is what makes a schedule replayable from a seed.
//!
//! The baton handoff (mutex + condvar) also creates a happens-before edge
//! between consecutive steps of different virtual threads, so the memory
//! model seen by the program under test is sequential consistency — the
//! model explores *interleavings*, not weak-memory reorderings.

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};

use crate::scheduler::Scheduler;

/// Sentinel panic payload used to unwind a virtual thread once its execution
/// has already failed (another thread panicked, deadlock, step bound). The
/// panic hook suppresses it and the thread wrapper swallows it.
pub(crate) struct Abort;

/// Scheduling status of one virtual thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// May be picked by the scheduler.
    Runnable,
    /// Waiting for another thread to finish (a `join`).
    Blocked,
    /// Returned or unwound; never runs again.
    Finished,
}

struct VThread {
    status: Status,
    /// Virtual threads blocked in `join` on this one; made runnable when it
    /// finishes.
    joiners: Vec<usize>,
}

struct ExecState {
    threads: Vec<VThread>,
    /// The one virtual thread allowed to run right now.
    current: usize,
    scheduler: Box<dyn Scheduler>,
    steps: u64,
    max_steps: u64,
    /// First failure observed in this schedule (panic message, deadlock or
    /// step-bound report). Once set, every thread unwinds via [`Abort`].
    failure: Option<String>,
}

/// One running schedule. See the module docs.
pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
    /// OS join handles of spawned virtual threads (not thread 0), joined by
    /// the runner after the schedule ends so no TLS leaks across schedules.
    os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    /// `(execution, virtual thread id)` of the current OS thread, when it is
    /// a virtual thread of some schedule.
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
    /// Panic message captured by the hook for the unwinding vthread.
    static PANIC_MSG: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Returns the `(execution, id)` of the calling virtual thread, if any.
pub(crate) fn current_ctx() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<(Arc<Execution>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

/// Installs (once, process-wide) a panic hook that captures messages from
/// virtual threads instead of printing them: a model checker *expects* to
/// trigger panics (that is a finding, reported with its seed), so the default
/// hook's backtrace spew for every explored failure would drown the report.
/// Panics on non-virtual threads go to the previously installed hook.
fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let in_vthread = CURRENT.with(|c| c.borrow().is_some());
            if !in_vthread {
                previous(info);
                return;
            }
            if info.payload().downcast_ref::<Abort>().is_some() {
                return; // expected teardown unwind, nothing to record
            }
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            let located = match info.location() {
                Some(loc) => format!("{msg} (at {}:{})", loc.file(), loc.line()),
                None => msg,
            };
            PANIC_MSG.with(|m| *m.borrow_mut() = Some(located));
        }));
    });
}

/// Unwinds the calling virtual thread because the schedule already failed.
fn abort_unwind() -> ! {
    panic::panic_any(Abort)
}

impl Execution {
    pub(crate) fn new(scheduler: Box<dyn Scheduler>, max_steps: u64) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(ExecState {
                threads: Vec::new(),
                current: 0,
                scheduler,
                steps: 0,
                max_steps,
                failure: None,
            }),
            cv: Condvar::new(),
            os_handles: Mutex::new(Vec::new()),
        })
    }

    /// Registers a new virtual thread and returns its id.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        let id = st.threads.len();
        st.threads.push(VThread {
            status: Status::Runnable,
            joiners: Vec::new(),
        });
        st.scheduler.thread_started(id);
        id
    }

    pub(crate) fn push_os_handle(&self, handle: std::thread::JoinHandle<()>) {
        self.os_handles.lock().unwrap().push(handle);
    }

    fn fail(&self, st: &mut ExecState, message: String) {
        if st.failure.is_none() {
            st.failure = Some(message);
        }
        self.cv.notify_all();
    }

    /// The runnable thread ids, in increasing order (determinism!).
    fn runnable(st: &ExecState) -> Vec<usize> {
        st.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(id, _)| id)
            .collect()
    }

    /// Picks the next thread to run and, if it is not `me`, parks until the
    /// baton comes back. Called with `me` runnable unless it just blocked or
    /// finished.
    fn reschedule<'a>(
        self: &'a Arc<Self>,
        mut st: MutexGuard<'a, ExecState>,
        me: usize,
        yielding: bool,
    ) -> MutexGuard<'a, ExecState> {
        if st.failure.is_some() {
            drop(st);
            abort_unwind();
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            let max = st.max_steps;
            self.fail(
                &mut st,
                format!(
                    "schedule exceeded {max} interleaving points; livelock, or raise \
                     Config::max_steps"
                ),
            );
            drop(st);
            abort_unwind();
        }
        let runnable = Self::runnable(&st);
        if runnable.is_empty() {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                // Schedule complete; nothing left to schedule.
                self.cv.notify_all();
                return st;
            }
            self.fail(
                &mut st,
                "deadlock: every unfinished virtual thread is blocked".to_string(),
            );
            drop(st);
            abort_unwind();
        }
        let me_runnable = st.threads[me].status == Status::Runnable;
        let choice = st.scheduler.choose(&runnable, me, me_runnable, yielding);
        debug_assert!(
            runnable.contains(&choice),
            "scheduler picked a blocked thread"
        );
        st.current = choice;
        if choice != me {
            self.cv.notify_all();
            st = self.park_until_current(st, me);
        }
        st
    }

    /// Waits until `me` holds the baton, unwinding if the schedule failed.
    fn park_until_current<'a>(
        &self,
        mut st: MutexGuard<'a, ExecState>,
        me: usize,
    ) -> MutexGuard<'a, ExecState> {
        while st.current != me && st.failure.is_none() {
            st = self.cv.wait(st).unwrap();
        }
        if st.failure.is_some() {
            drop(st);
            abort_unwind();
        }
        st
    }

    /// One interleaving point for the running thread `me`.
    pub(crate) fn point(self: &Arc<Self>, me: usize, yielding: bool) {
        // A thread that is already unwinding (its own panic, or the Abort of
        // a failed schedule) runs its destructors — which may themselves hit
        // instrumented atomics. Those points must not reschedule: raising
        // Abort again would be a panic-while-panicking abort, and handing the
        // baton away mid-unwind explores nothing the completed schedule
        // prefix did not. The thread keeps the baton, finishes its unwind,
        // and `finish_thread` hands over.
        if std::thread::panicking() {
            return;
        }
        let st = self.state.lock().unwrap();
        drop(self.reschedule(st, me, yielding));
    }

    /// Blocks `me` until `target` finishes.
    pub(crate) fn join_wait(self: &Arc<Self>, me: usize, target: usize) {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.failure.is_some() {
                drop(st);
                abort_unwind();
            }
            if st.threads[target].status == Status::Finished {
                return;
            }
            st.threads[me].status = Status::Blocked;
            st.threads[target].joiners.push(me);
            st = self.reschedule(st, me, false);
            // Back with the baton: the target finished (it made us runnable).
        }
    }

    /// Marks `me` finished, wakes its joiners and hands the baton on.
    /// `panic_message` carries the failure if the thread's body panicked.
    pub(crate) fn finish_thread(self: &Arc<Self>, me: usize, panic_message: Option<String>) {
        let mut st = self.state.lock().unwrap();
        st.threads[me].status = Status::Finished;
        let joiners = std::mem::take(&mut st.threads[me].joiners);
        for j in joiners {
            // On a failed schedule a joiner may have torn down already (the
            // failure wakes everyone); only revive ones still blocked.
            if st.threads[j].status == Status::Blocked {
                st.threads[j].status = Status::Runnable;
            }
        }
        if let Some(msg) = panic_message {
            self.fail(&mut st, msg);
            return;
        }
        if st.failure.is_some() {
            self.cv.notify_all();
            return;
        }
        let runnable = Self::runnable(&st);
        if runnable.is_empty() {
            if st.threads.iter().any(|t| t.status == Status::Blocked) {
                self.fail(
                    &mut st,
                    "deadlock: every unfinished virtual thread is blocked".to_string(),
                );
            } else {
                self.cv.notify_all(); // all finished: schedule complete
            }
            return;
        }
        let choice = st.scheduler.choose(&runnable, me, false, false);
        st.current = choice;
        self.cv.notify_all();
    }

    /// Parks a freshly spawned vthread until it is scheduled for the first
    /// time. Returns `false` when the schedule failed before that happened
    /// (the body must not run).
    fn wait_first_run(self: &Arc<Self>, me: usize) -> bool {
        let mut st = self.state.lock().unwrap();
        while st.current != me && st.failure.is_none() {
            st = self.cv.wait(st).unwrap();
        }
        st.failure.is_none()
    }

    fn take_failure(&self) -> Option<String> {
        self.state.lock().unwrap().failure.take()
    }

    /// Total interleaving points taken in this schedule so far.
    pub(crate) fn steps(&self) -> u64 {
        self.state.lock().unwrap().steps
    }
}

/// Body of every virtual thread's OS thread: set TLS, wait to be scheduled,
/// run, then run the finish protocol (recording a panic message if any).
pub(crate) fn vthread_main(exec: Arc<Execution>, id: usize, body: impl FnOnce()) {
    install_panic_hook();
    set_ctx(Some((Arc::clone(&exec), id)));
    if exec.wait_first_run(id) {
        let outcome = panic::catch_unwind(AssertUnwindSafe(body));
        let message = match outcome {
            Ok(()) => None,
            Err(payload) if payload.downcast_ref::<Abort>().is_some() => None,
            Err(_) => Some(
                PANIC_MSG
                    .with(|m| m.borrow_mut().take())
                    .unwrap_or_else(|| "virtual thread panicked".to_string()),
            ),
        };
        exec.finish_thread(id, message);
    } else {
        // Never scheduled: the schedule failed first.
        exec.finish_thread(id, None);
    }
    set_ctx(None);
}

/// Runs `f` once under `scheduler`. Returns `Err(report)` if the schedule
/// failed (panic, deadlock, or step bound) and the number of interleaving
/// points taken either way.
pub(crate) fn run_schedule(
    scheduler: Box<dyn Scheduler>,
    max_steps: u64,
    f: Arc<dyn Fn() + Send + Sync>,
) -> (u64, Result<(), String>) {
    let exec = Execution::new(scheduler, max_steps);
    let id0 = exec.register_thread();
    debug_assert_eq!(id0, 0);
    let exec0 = Arc::clone(&exec);
    let t0 = std::thread::spawn(move || vthread_main(exec0, 0, move || f()));
    t0.join().expect("virtual thread wrappers never unwind");
    // Spawned vthreads may still be draining (and may spawn more); join them
    // all so no OS thread outlives its schedule.
    loop {
        let handles = std::mem::take(&mut *exec.os_handles.lock().unwrap());
        if handles.is_empty() {
            break;
        }
        for handle in handles {
            handle.join().expect("virtual thread wrappers never unwind");
        }
    }
    let steps = exec.steps();
    match exec.take_failure() {
        None => (steps, Ok(())),
        Some(report) => (steps, Err(report)),
    }
}
