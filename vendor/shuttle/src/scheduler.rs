//! Scheduling strategies: the pluggable "who runs next" policies.
//!
//! * [`RandomScheduler`] — uniform choice among runnable threads from a
//!   64-bit seed. The workhorse: thousands of seeds per test, each one
//!   replayable.
//! * [`PctScheduler`] — PCT-flavored (Burckhardt et al., ASPLOS'10):
//!   strict random priorities with `depth` random priority-change points, so
//!   low-probability ordering bugs need far fewer schedules than uniform
//!   sampling.
//! * [`DfsExplorer`] — bounded-exhaustive depth-first enumeration of every
//!   schedule with at most `preemption_bound` preemptions, for tiny cores
//!   where "passes" should mean *all* interleavings, not a sample.

use std::sync::{Arc, Mutex};

/// A scheduling policy driving one schedule.
///
/// `choose` is called at every interleaving point with the sorted list of
/// runnable thread ids; its return value must be one of them. The choices are
/// the only nondeterminism in a schedule, so a strategy that derives them
/// deterministically (from a seed, or from a replayed decision path) makes
/// the whole schedule replayable.
pub(crate) trait Scheduler: Send {
    /// Notification that virtual thread `id` was registered.
    fn thread_started(&mut self, _id: usize) {}

    /// Picks the next thread to run. `current` is the thread that reached
    /// the interleaving point, `current_runnable` whether it may continue
    /// (false when it just blocked or finished), `yielding` whether it hit an
    /// explicit yield/spin hint and would rather someone else ran.
    fn choose(
        &mut self,
        runnable: &[usize],
        current: usize,
        current_runnable: bool,
        yielding: bool,
    ) -> usize;
}

/// SplitMix64: tiny, seedable, and good enough to pick schedule branches.
#[derive(Clone, Debug)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}

/// Mixes a schedule index into a base seed (so schedule `i` of a run has a
/// printable standalone seed).
pub(crate) fn derive_seed(base: u64, index: u64) -> u64 {
    let mut rng = SplitMix64::new(base ^ index.wrapping_mul(0xA24B_AED4_963E_E407));
    rng.next_u64()
}

/// Uniform random choice among runnable threads.
pub(crate) struct RandomScheduler {
    rng: SplitMix64,
}

impl RandomScheduler {
    pub(crate) fn new(seed: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn choose(
        &mut self,
        runnable: &[usize],
        current: usize,
        current_runnable: bool,
        yielding: bool,
    ) -> usize {
        // On an explicit yield, prefer anyone else (a spin-wait loop that
        // keeps winning the coin toss is wasted schedule depth).
        if yielding && current_runnable && runnable.len() > 1 {
            let others: Vec<usize> = runnable.iter().copied().filter(|&t| t != current).collect();
            return others[self.rng.below(others.len())];
        }
        runnable[self.rng.below(runnable.len())]
    }
}

/// PCT-flavored priority scheduler: each thread gets a random strict
/// priority; the highest-priority runnable thread always runs; at `depth`
/// random step indices the running thread's priority drops below everyone
/// else's. (With d change points, bugs of "preemption depth" d are found
/// with known probability — the PCT guarantee.)
pub(crate) struct PctScheduler {
    rng: SplitMix64,
    /// priorities[id]: larger runs first; updated at change points.
    priorities: Vec<u64>,
    /// Remaining step indices (descending) at which to demote the runner.
    change_points: Vec<u64>,
    steps: u64,
    next_low: u64,
}

impl PctScheduler {
    pub(crate) fn new(seed: u64, depth: usize, expected_steps: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut change_points: Vec<u64> = (0..depth)
            .map(|_| rng.next_u64() % expected_steps.max(1))
            .collect();
        change_points.sort_unstable_by(|a, b| b.cmp(a));
        Self {
            rng,
            priorities: Vec::new(),
            change_points,
            steps: 0,
            next_low: 0,
        }
    }
}

impl Scheduler for PctScheduler {
    fn thread_started(&mut self, id: usize) {
        debug_assert_eq!(id, self.priorities.len());
        // High random priorities; change points demote below `next_low`,
        // which only ever decreases.
        self.priorities
            .push((1 << 32) + self.rng.next_u64() % (1 << 31));
    }

    fn choose(
        &mut self,
        runnable: &[usize],
        current: usize,
        current_runnable: bool,
        yielding: bool,
    ) -> usize {
        self.steps += 1;
        let demote =
            self.change_points.last() == Some(&self.steps) || (yielding && current_runnable);
        if demote {
            if self.change_points.last() == Some(&self.steps) {
                self.change_points.pop();
            }
            self.priorities[current] = self.next_low;
            self.next_low = self.next_low.saturating_sub(1);
        }
        *runnable
            .iter()
            .max_by_key(|&&t| self.priorities[t])
            .expect("choose() is never called with an empty runnable set")
    }
}

/// Shared state of a bounded-exhaustive exploration, kept across schedules.
///
/// Classic replay-based DFS: the decision path of the previous schedule is
/// replayed up to the deepest node with an untried alternative, that
/// alternative is taken, and fresh decision nodes are recorded past it.
/// Options at a node are "continue the current thread" first, then each
/// preemption (switching away from a still-runnable thread), admitted only
/// while the path has preemption budget left.
pub(crate) struct DfsState {
    /// One entry per decision point of the schedule being (re)played.
    path: Vec<DfsNode>,
    preemption_bound: usize,
    /// Schedules fully run so far.
    pub(crate) schedules: usize,
    /// True once every bounded schedule has been explored.
    pub(crate) exhausted: bool,
}

struct DfsNode {
    /// Candidate threads at this decision, default choice first.
    options: Vec<usize>,
    /// Index into `options` of the branch the current schedule takes.
    cursor: usize,
    /// Whether taking `options[i>0]`... — every non-default option of this
    /// node costs one preemption (the default continues the runner, or is a
    /// forced switch that costs none).
    preempting: bool,
}

impl DfsState {
    pub(crate) fn new(preemption_bound: usize) -> Self {
        Self {
            path: Vec::new(),
            preemption_bound,
            schedules: 0,
            exhausted: false,
        }
    }

    /// Advances to the next unexplored path; returns false when exploration
    /// is complete.
    pub(crate) fn advance(&mut self) -> bool {
        self.schedules += 1;
        while let Some(last) = self.path.last_mut() {
            last.cursor += 1;
            if last.cursor < last.options.len() {
                return true;
            }
            self.path.pop();
        }
        self.exhausted = true;
        false
    }
}

/// Per-schedule driver replaying (and extending) the shared DFS state.
pub(crate) struct DfsScheduler {
    state: Arc<Mutex<DfsState>>,
    depth: usize,
    preemptions_used: usize,
}

impl DfsScheduler {
    pub(crate) fn new(state: Arc<Mutex<DfsState>>) -> Self {
        Self {
            state,
            depth: 0,
            preemptions_used: 0,
        }
    }
}

impl Scheduler for DfsScheduler {
    fn choose(
        &mut self,
        runnable: &[usize],
        current: usize,
        current_runnable: bool,
        yielding: bool,
    ) -> usize {
        let mut state = self.state.lock().unwrap();
        let bound = state.preemption_bound;
        if self.depth == state.path.len() {
            // First schedule to reach this depth: record the decision node.
            // Default option: keep running `current` when possible, else the
            // lowest-id runnable thread (a forced, free switch). A *yield*
            // with other threads runnable switches away unconditionally —
            // staying on a spinning yielder (a lease loop, a lock acquire)
            // would be an infinite subtree the DFS could never exhaust, and
            // the switch is free: the thread volunteered, so it is not a
            // preemption.
            let yielded_away = yielding && current_runnable && runnable.len() > 1;
            let (default, preempting) = if yielded_away {
                let other = *runnable
                    .iter()
                    .find(|&&t| t != current)
                    .expect("len > 1 guarantees another runnable thread");
                (other, false)
            } else if current_runnable {
                (current, true)
            } else {
                (runnable[0], false)
            };
            let mut options = vec![default];
            if !preempting || self.preemptions_used < bound {
                options.extend(
                    runnable
                        .iter()
                        .copied()
                        .filter(|&t| t != default && !(yielded_away && t == current)),
                );
            }
            state.path.push(DfsNode {
                options,
                cursor: 0,
                preempting,
            });
        }
        let node = &state.path[self.depth];
        let choice = node.options[node.cursor];
        if node.preempting && node.cursor > 0 {
            self.preemptions_used += 1;
        }
        self.depth += 1;
        choice
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic_and_spreads() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_ne!(derive_seed(1, 2), derive_seed(1, 3));
        assert_ne!(derive_seed(1, 2), derive_seed(2, 2));
    }

    #[test]
    fn random_scheduler_replays_identically() {
        let mut a = RandomScheduler::new(42);
        let mut b = RandomScheduler::new(42);
        for _ in 0..100 {
            assert_eq!(
                a.choose(&[0, 1, 2], 1, true, false),
                b.choose(&[0, 1, 2], 1, true, false)
            );
        }
    }

    #[test]
    fn random_scheduler_yield_prefers_others() {
        let mut s = RandomScheduler::new(7);
        for _ in 0..50 {
            assert_ne!(s.choose(&[0, 1], 0, true, true), 0);
        }
    }

    #[test]
    fn pct_always_picks_a_runnable_thread() {
        let mut s = PctScheduler::new(3, 2, 100);
        for id in 0..3 {
            s.thread_started(id);
        }
        for step in 0..200 {
            let runnable = [step % 3, (step + 1) % 3];
            let mut sorted = runnable.to_vec();
            sorted.sort_unstable();
            let choice = s.choose(&sorted, step % 3, true, false);
            assert!(sorted.contains(&choice));
        }
    }

    #[test]
    fn dfs_enumerates_all_bounded_paths() {
        // Two threads, two decisions each, bound large enough not to bite:
        // simulate a fixed-shape tree and count leaves.
        let state = Arc::new(Mutex::new(DfsState::new(8)));
        let mut schedules = Vec::new();
        loop {
            let mut driver = DfsScheduler::new(Arc::clone(&state));
            let mut path = Vec::new();
            for _ in 0..3 {
                path.push(driver.choose(&[0, 1], *path.last().unwrap_or(&0), true, false));
            }
            schedules.push(path);
            if !state.lock().unwrap().advance() {
                break;
            }
        }
        // 2 options at each of 3 depths = 8 distinct schedules.
        assert_eq!(schedules.len(), 8);
        schedules.sort();
        schedules.dedup();
        assert_eq!(schedules.len(), 8, "schedules must be distinct");
        assert!(state.lock().unwrap().exhausted);
    }

    #[test]
    fn dfs_respects_preemption_bound() {
        // With bound 0 every decision keeps the current thread: exactly one
        // schedule exists.
        let state = Arc::new(Mutex::new(DfsState::new(0)));
        let mut count = 0;
        loop {
            let mut driver = DfsScheduler::new(Arc::clone(&state));
            for _ in 0..4 {
                assert_eq!(driver.choose(&[0, 1], 0, true, false), 0);
            }
            count += 1;
            if !state.lock().unwrap().advance() {
                break;
            }
        }
        assert_eq!(count, 1);
    }
}
