//! A vendored-minimal multi-worker async executor.
//!
//! The workspace builds offline (see the root `Cargo.toml`), so instead of
//! pulling in tokio or smol this shim provides exactly what the suite's
//! task-grain examples and the `kv-async` figure need:
//!
//! * [`Runtime::new`] — a fixed pool of worker OS threads;
//! * [`Runtime::spawn`] — submit a `Send` future, get a [`JoinHandle`] that
//!   is itself a future (and has a blocking [`JoinHandle::join`]);
//! * [`Runtime::block_on`] — drive a (not necessarily `Send`) future on the
//!   calling thread while the workers run spawned tasks;
//! * [`yield_now`] — a cooperative suspension point.
//!
//! The **`Send` bound on [`Runtime::spawn`]** is the load-bearing part for
//! the suite: `wfe-task`'s `AsyncGuard` is `!Send`, so a task that tries to
//! hold SMR protection across an `.await` does not compile when handed to
//! this executor (see the `compile_fail` doctests in `wfe-task`).
//!
//! # Scheduling shape
//!
//! The run queue follows the suite's `TypeStableStack` idiom (a versioned
//! wide-CAS Treiber stack with recycled, type-stable nodes — the same
//! substrate as `wfe-reclaim`'s orphan stack and `HandlePool` freelist):
//! each worker owns a lock-free LIFO `Stack`; `spawn` distributes tasks
//! round-robin across workers; wake-ups go to a shared injector stack; an
//! idle worker pops its own stack first, then the injector, then *steals*
//! from its siblings before parking on a condvar. LIFO run queues favour
//! cache-warm re-polls of just-woken tasks, which is exactly the
//! check-out/park/re-poll churn the `HandlePool` is optimised for.
//!
//! Dropping the [`Runtime`] stops the workers; tasks still queued at that
//! point are dropped without being polled again (drive the work you care
//! about to completion with [`Runtime::block_on`] + [`JoinHandle`]s first).
//!
//! ```
//! let rt = mini_rt::Runtime::new(2);
//! let handles: Vec<_> = (0..64)
//!     .map(|i| rt.spawn(async move { i * 2 }))
//!     .collect();
//! let total: usize = rt.block_on(async {
//!     let mut total = 0;
//!     for handle in handles {
//!         total += handle.await;
//!     }
//!     total
//! });
//! assert_eq!(total, 64 * 63);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::future::Future;
use std::marker::PhantomData;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use wfe_atomics::AtomicPair;

// ---------------------------------------------------------------------------
// The run-queue substrate: a lock-free LIFO stack with type-stable nodes.
// ---------------------------------------------------------------------------

/// One node: the parked payload plus the intrusive `next` link.
struct Node<T> {
    payload: Option<T>,
    /// `*mut Node<T>` as `usize`; atomic because a slow `pop` may read it
    /// while the node is concurrently recycled for a new `push`.
    next: AtomicUsize,
}

/// A lock-free LIFO stack of `T` with type-stable, recycled nodes — the
/// `TypeStableStack` idiom of `wfe-reclaim`, reimplemented here so the
/// vendored executor stays dependency-light (it needs only the versioned
/// wide-CAS from `wfe-atomics`).
///
/// Both the head and the spare freelist are a versioned wide-CAS
/// ([`AtomicPair`]), so push/pop are lock-free and ABA-safe; nodes are only
/// deallocated when the stack itself is dropped, which makes the racy
/// `next` read in `pop` sound.
struct Stack<T> {
    /// `(node ptr, version)` — the version counter makes the CAS ABA-safe.
    head: AtomicPair,
    /// Freelist of spare nodes, same encoding.
    spares: AtomicPair,
    _owns: PhantomData<Box<Node<T>>>,
}

// SAFETY: the raw node pointers are owned by the stack; payloads are handed
// across threads only through the versioned-CAS head, so `T: Send` is the
// exact requirement.
unsafe impl<T: Send> Send for Stack<T> {}
// SAFETY: all shared state is accessed through atomics and the versioned
// CAS; `T: Send` is enough because payloads move, they are never shared.
unsafe impl<T: Send> Sync for Stack<T> {}

impl<T> Stack<T> {
    fn new() -> Self {
        Self {
            head: AtomicPair::new(0, 0),
            spares: AtomicPair::new(0, 0),
            _owns: PhantomData,
        }
    }

    fn pop_node(list: &AtomicPair) -> Option<*mut Node<T>> {
        loop {
            let (head, version) = list.load();
            if head == 0 {
                return None;
            }
            let node = head as *mut Node<T>;
            // SAFETY: nodes are never deallocated while the stack lives, so
            // the read is sound even if `node` was concurrently popped; the
            // versioned CAS below fails in that case and we retry.
            let next = unsafe { (*node).next.load(Ordering::Relaxed) };
            if list
                .compare_exchange((head, version), (next as u64, version + 1))
                .is_ok()
            {
                return Some(node);
            }
        }
    }

    fn push_node(list: &AtomicPair, node: *mut Node<T>) {
        loop {
            let (head, version) = list.load();
            // SAFETY: type-stable nodes are never deallocated while the stack
            // lives; the store is atomic, so racing readers see either value.
            unsafe { (*node).next.store(head as usize, Ordering::Relaxed) };
            if list
                .compare_exchange((head, version), (node as u64, version + 1))
                .is_ok()
            {
                return;
            }
        }
    }

    fn push(&self, payload: T) {
        let node = Self::pop_node(&self.spares).unwrap_or_else(|| {
            Box::into_raw(Box::new(Node {
                payload: None,
                next: AtomicUsize::new(0),
            }))
        });
        // SAFETY: the node was just popped off a list (or freshly allocated),
        // so this thread has exclusive access to its payload.
        unsafe { (*node).payload = Some(payload) };
        Self::push_node(&self.head, node);
    }

    fn pop(&self) -> Option<T> {
        let node = Self::pop_node(&self.head)?;
        // SAFETY: the pop above transferred exclusive ownership of the node
        // (and its payload) to this thread.
        let payload = unsafe { (*node).payload.take() };
        Self::push_node(&self.spares, node);
        debug_assert!(payload.is_some(), "queued node always carries a payload");
        payload
    }
}

impl<T> Drop for Stack<T> {
    fn drop(&mut self) {
        for list in [&self.head, &self.spares] {
            while let Some(node) = Self::pop_node(list) {
                // SAFETY: `Drop` has exclusive access; every node was
                // allocated by this stack and is freed exactly once.
                drop(unsafe { Box::from_raw(node) });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tasks.
// ---------------------------------------------------------------------------

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// Task states. A task is queued (on exactly one stack) iff `SCHEDULED`.
const IDLE: usize = 0;
const SCHEDULED: usize = 1;
const RUNNING: usize = 2;
const NOTIFIED: usize = 3; // woken while RUNNING; re-queued after the poll
const DONE: usize = 4;

struct Task {
    /// The wrapped future; `None` once the task completed.
    future: Mutex<Option<BoxFuture>>,
    state: AtomicUsize,
    shared: Arc<Shared>,
}

impl Task {
    /// Requeues the task in response to a wake-up (to the shared injector:
    /// wakes arrive from arbitrary threads).
    fn schedule(self: &Arc<Self>) {
        let mut state = self.state.load(Ordering::Acquire);
        loop {
            let target = match state {
                IDLE => SCHEDULED,
                RUNNING => NOTIFIED,
                // Already queued, already re-queue-pending, or complete.
                SCHEDULED | NOTIFIED | DONE => return,
                _ => unreachable!("invalid task state {state}"),
            };
            match self.state.compare_exchange_weak(
                state,
                target,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    if target == SCHEDULED {
                        self.shared.injector.push(Arc::clone(self));
                        self.shared.unpark_one();
                    }
                    return;
                }
                Err(observed) => state = observed,
            }
        }
    }

    /// Polls the task once; requeues it if it was woken mid-poll.
    fn run(self: Arc<Self>, worker: usize) {
        if self
            .state
            .compare_exchange(SCHEDULED, RUNNING, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return; // completed or spuriously re-queued
        }
        let mut slot = self.future.lock().unwrap_or_else(|e| e.into_inner());
        let Some(mut future) = slot.take() else {
            self.state.store(DONE, Ordering::Release);
            return;
        };
        drop(slot);

        let waker = Waker::from(Arc::clone(&self));
        let mut cx = Context::from_waker(&waker);
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                self.state.store(DONE, Ordering::Release);
            }
            Poll::Pending => {
                *self.future.lock().unwrap_or_else(|e| e.into_inner()) = Some(future);
                // If a wake arrived during the poll (RUNNING → NOTIFIED),
                // requeue on this worker's own stack: the task is cache-warm.
                if self
                    .state
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    self.state.store(SCHEDULED, Ordering::Release);
                    self.shared.locals[worker].push(Arc::clone(&self));
                    self.shared.unpark_one();
                }
            }
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.schedule();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.schedule();
    }
}

// ---------------------------------------------------------------------------
// Join handles.
// ---------------------------------------------------------------------------

struct JoinInner<T> {
    result: Option<T>,
    waker: Option<Waker>,
    done: bool,
}

struct JoinState<T> {
    inner: Mutex<JoinInner<T>>,
    done_cv: Condvar,
}

impl<T> JoinState<T> {
    fn new() -> Self {
        Self {
            inner: Mutex::new(JoinInner {
                result: None,
                waker: None,
                done: false,
            }),
            done_cv: Condvar::new(),
        }
    }

    fn complete(&self, value: T) {
        let waker = {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.result = Some(value);
            inner.done = true;
            inner.waker.take()
        };
        self.done_cv.notify_all();
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

/// Handle to a spawned task: await it (it is a [`Future`]) or block on it
/// with [`JoinHandle::join`].
pub struct JoinHandle<T> {
    state: Arc<JoinState<T>>,
}

impl<T> JoinHandle<T> {
    /// Blocks the calling thread until the task completes and returns its
    /// output. Must not be called from a worker (it would deadlock the pool
    /// if every worker blocked); call it from the thread driving
    /// [`Runtime::block_on`] or any other external thread.
    pub fn join(self) -> T {
        let mut inner = self.state.inner.lock().unwrap_or_else(|e| e.into_inner());
        while !inner.done {
            inner = self
                .state
                .done_cv
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
        inner.result.take().expect("task output already taken")
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut inner = self.state.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.done {
            Poll::Ready(inner.result.take().expect("JoinHandle polled after Ready"))
        } else {
            inner.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// The runtime.
// ---------------------------------------------------------------------------

struct Shared {
    /// Wake-ups and overflow land here; every worker drains it.
    injector: Stack<Arc<Task>>,
    /// One LIFO run stack per worker; siblings steal from it when idle.
    locals: Vec<Stack<Arc<Task>>>,
    /// Round-robin cursor for distributing `spawn`s across workers.
    next_worker: AtomicUsize,
    stop: AtomicBool,
    park_lock: Mutex<()>,
    park_cv: Condvar,
}

impl Shared {
    fn unpark_one(&self) {
        // Serialise with the sleepers' re-check (see `Runtime::worker`); the
        // timeout there is the backstop for the remaining benign race.
        drop(self.park_lock.lock().unwrap_or_else(|e| e.into_inner()));
        self.park_cv.notify_one();
    }

    /// Pops the next runnable task for `worker`: own stack, then the
    /// injector, then steal from the siblings.
    fn find_task(&self, worker: usize) -> Option<Arc<Task>> {
        if let Some(task) = self.locals[worker].pop() {
            return Some(task);
        }
        if let Some(task) = self.injector.pop() {
            return Some(task);
        }
        let n = self.locals.len();
        for offset in 1..n {
            if let Some(task) = self.locals[(worker + offset) % n].pop() {
                return Some(task);
            }
        }
        None
    }
}

/// A fixed pool of worker threads executing spawned tasks.
///
/// See the [module docs](self) for the scheduling shape and the role of the
/// `Send` bound on [`spawn`](Runtime::spawn).
pub struct Runtime {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Runtime {
    /// Starts a pool of `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            injector: Stack::new(),
            locals: (0..workers).map(|_| Stack::new()).collect(),
            next_worker: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            park_lock: Mutex::new(()),
            park_cv: Condvar::new(),
        });
        let workers = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mini-rt-{index}"))
                    .spawn(move || Self::worker(shared, index))
                    .expect("spawning a mini-rt worker thread")
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.shared.locals.len()
    }

    fn worker(shared: Arc<Shared>, index: usize) {
        loop {
            // Check stop *before* dequeuing: a task that re-queues itself on
            // every poll (a yield loop) would otherwise starve the shutdown
            // check forever.
            if shared.stop.load(Ordering::Acquire) {
                return;
            }
            if let Some(task) = shared.find_task(index) {
                task.run(index);
                continue;
            }
            let guard = shared.park_lock.lock().unwrap_or_else(|e| e.into_inner());
            // Re-check under the lock `unpark_one` serialises on; the
            // timeout covers the push-before-lock window.
            if shared.find_task(index).is_none() && !shared.stop.load(Ordering::Acquire) {
                let _ = shared
                    .park_cv
                    .wait_timeout(guard, Duration::from_millis(1))
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    /// Submits a future to the pool and returns its [`JoinHandle`].
    ///
    /// The `Send` bound is what keeps `!Send` poll-scoped state (like
    /// `wfe-task`'s `AsyncGuard`) from being held across an `.await`: a
    /// future capturing one across a suspension point is itself `!Send` and
    /// is rejected here at compile time.
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let state = Arc::new(JoinState::new());
        let completion = Arc::clone(&state);
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(async move {
                completion.complete(future.await);
            }))),
            state: AtomicUsize::new(SCHEDULED),
            shared: Arc::clone(&self.shared),
        });
        let n = self.shared.locals.len();
        let worker = self.shared.next_worker.fetch_add(1, Ordering::Relaxed) % n;
        self.shared.locals[worker].push(task);
        self.shared.unpark_one();
        JoinHandle { state }
    }

    /// Drives `future` to completion on the calling thread (parking it while
    /// the future is pending) while the workers run spawned tasks. The
    /// future does not need to be `Send` — it never leaves this thread.
    pub fn block_on<F: Future>(&self, future: F) -> F::Output {
        struct Parker {
            woken: Mutex<bool>,
            cv: Condvar,
        }
        impl Wake for Parker {
            fn wake(self: Arc<Self>) {
                *self.woken.lock().unwrap_or_else(|e| e.into_inner()) = true;
                self.cv.notify_one();
            }
        }
        let parker = Arc::new(Parker {
            woken: Mutex::new(false),
            cv: Condvar::new(),
        });
        let waker = Waker::from(Arc::clone(&parker));
        let mut cx = Context::from_waker(&waker);
        let mut future = std::pin::pin!(future);
        loop {
            match future.as_mut().poll(&mut cx) {
                Poll::Ready(value) => return value,
                Poll::Pending => {
                    let mut woken = parker.woken.lock().unwrap_or_else(|e| e.into_inner());
                    while !*woken {
                        woken = parker.cv.wait(woken).unwrap_or_else(|e| e.into_inner());
                    }
                    *woken = false;
                }
            }
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        {
            let _guard = self
                .shared
                .park_lock
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            self.shared.park_cv.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Drain the queues: queued tasks hold an `Arc<Shared>` each, so
        // leaving them parked would keep the `Task ↔ Shared` cycle alive.
        while self.shared.injector.pop().is_some() {}
        for local in &self.shared.locals {
            while local.pop().is_some() {}
        }
    }
}

/// A future that suspends exactly once, re-queueing its task, then resolves.
/// The suite's cooperative yield point (`yield_now().await`).
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn stack_is_lifo_and_recycles_nodes() {
        let stack = Stack::new();
        assert_eq!(stack.pop(), None);
        stack.push(1u64);
        stack.push(2u64);
        assert_eq!(stack.pop(), Some(2));
        stack.push(3u64);
        assert_eq!(stack.pop(), Some(3));
        assert_eq!(stack.pop(), Some(1));
        assert_eq!(stack.pop(), None);
    }

    #[test]
    fn spawn_and_join_round_trip() {
        let rt = Runtime::new(2);
        let handle = rt.spawn(async { 6 * 7 });
        assert_eq!(handle.join(), 42);
    }

    #[test]
    fn block_on_awaits_spawned_tasks() {
        let rt = Runtime::new(3);
        let handles: Vec<_> = (0..100u64).map(|i| rt.spawn(async move { i })).collect();
        let sum = rt.block_on(async {
            let mut sum = 0;
            for handle in handles {
                sum += handle.await;
            }
            sum
        });
        assert_eq!(sum, 99 * 100 / 2);
    }

    #[test]
    fn yield_now_suspends_and_resumes() {
        let rt = Runtime::new(1);
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let counter = Arc::clone(&counter);
                rt.spawn(async move {
                    for _ in 0..10 {
                        counter.fetch_add(1, Ordering::Relaxed);
                        yield_now().await;
                    }
                })
            })
            .collect();
        rt.block_on(async {
            for handle in handles {
                handle.await;
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 80);
    }

    #[test]
    fn many_tasks_across_workers_complete() {
        let rt = Runtime::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..10_000)
            .map(|_| {
                let counter = Arc::clone(&counter);
                rt.spawn(async move {
                    yield_now().await;
                    counter.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        rt.block_on(async {
            for handle in handles {
                handle.await;
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn dropping_the_runtime_abandons_queued_tasks_without_leaking() {
        let rt = Runtime::new(1);
        // A task that yields forever: it will still be queued at drop time.
        let _handle = rt.spawn(async {
            loop {
                yield_now().await;
            }
        });
        drop(rt); // must not hang or leak (Task ↔ Shared cycle is drained)
    }
}
