//! `Option` strategies, mirroring `proptest::option`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`weighted`].
pub struct OptionStrategy<S> {
    some_probability: f64,
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        if rng.unit_f64() < self.some_probability {
            Some(self.inner.new_value(rng))
        } else {
            None
        }
    }
}

/// Generates `Some` (from `inner`) with probability `some_probability`, else
/// `None`.
///
/// # Panics
///
/// Panics if `some_probability` is not in `[0, 1]`.
pub fn weighted<S: Strategy>(some_probability: f64, inner: S) -> OptionStrategy<S> {
    assert!(
        (0.0..=1.0).contains(&some_probability),
        "probability out of range"
    );
    OptionStrategy {
        some_probability,
        inner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_mixes_some_and_none() {
        let mut rng = TestRng::for_test("weighted");
        let strategy = weighted(0.6, 0u64..10);
        let somes = (0..1_000)
            .filter(|_| strategy.new_value(&mut rng).is_some())
            .count();
        assert!((450..750).contains(&somes), "somes = {somes}");
    }
}
