//! Value-generation strategies, mirroring `proptest::strategy`.

use core::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value *tree* (shrinking is not
/// implemented); a strategy simply produces a fresh value per case.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Generating through a `&Strategy` lets macro expansions avoid moving the
/// strategy expression.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// A type-erased strategy, see [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

/// Object-safe adapter behind [`BoxedStrategy`].
trait DynStrategy<V> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        self.0.dyn_new_value(rng)
    }
}

/// Uniform choice between several strategies; built by [`prop_oneof!`](crate::prop_oneof).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one strategy");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let arm = rng.usize_below(self.arms.len());
        self.arms[arm].new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                rng.$via(self.start, self.end)
            }
        }
    )*};
}

impl_range_strategy! {
    u8 => range_u8,
    u16 => range_u16,
    u32 => range_u32,
    u64 => range_u64,
    usize => range_usize,
    i8 => range_i8,
    i16 => range_i16,
    i32 => range_i32,
    i64 => range_i64,
    isize => range_isize,
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = TestRng::for_test("ranges");
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = (0usize..4).new_value(&mut rng);
            seen[v] = true;
            let w = (10u64..20).new_value(&mut rng);
            assert!((10..20).contains(&w));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::for_test("map");
        let strategy = (0u64..10, 0u64..10).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            assert!(strategy.new_value(&mut rng) < 20);
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let mut rng = TestRng::for_test("union");
        let union = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[union.new_value(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
