//! The `any::<T>()` entry point, mirroring `proptest::arbitrary`.

use core::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T` (full value range).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = TestRng::for_test("any");
        let strategy = any::<(u64, u64)>();
        let first = strategy.new_value(&mut rng);
        let second = strategy.new_value(&mut rng);
        assert_ne!(first, second);
    }
}
