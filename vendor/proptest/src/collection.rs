//! Collection strategies, mirroring `proptest::collection`.

use core::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.range_usize(self.size.start, self.size.end);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// come from `element`.
///
/// # Panics
///
/// Panics (on first use) if `size` is empty.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::for_test("vec");
        let strategy = vec(0u64..100, 1..10);
        for _ in 0..100 {
            let v = strategy.new_value(&mut rng);
            assert!((1..10).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }
}
