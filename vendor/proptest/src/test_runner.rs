//! Test configuration and the deterministic RNG behind the shim.

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Returns a config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// The environment variable that varies (and replays) the generated case
/// streams: every test's stream is its name hash mixed with this base seed,
/// and a failing test prints the base to replay with.
pub const SEED_ENV: &str = "PROPTEST_SEED";

/// The base seed in effect for this run: [`SEED_ENV`] if set and parseable,
/// otherwise `0` (the fixed default stream).
pub fn base_seed() -> u64 {
    std::env::var(SEED_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Deterministic generator feeding every strategy (SplitMix64).
///
/// Seeded from the test name mixed with [`base_seed`], so distinct tests
/// explore distinct streams, every run of the same test under the same
/// `PROPTEST_SEED` replays the same cases, and different seeds explore
/// different case streams.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for the named test.
    pub fn for_test(test_name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut seed: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in test_name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x100_0000_01B3);
        }
        Self {
            state: seed ^ base_seed().wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform index in `0..bound` (`bound` must be non-zero).
    pub fn usize_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "usize_below(0)");
        (self.next_u64() % bound as u64) as usize
    }
}

macro_rules! impl_rng_uint_range {
    ($($fn_name:ident => $t:ty),* $(,)?) => {$(
        impl TestRng {
            /// Returns a uniform value in `start..end`.
            pub fn $fn_name(&mut self, start: $t, end: $t) -> $t {
                let span = (end - start) as u64;
                start + (self.next_u64() % span) as $t
            }
        }
    )*};
}

impl_rng_uint_range! {
    range_u8 => u8,
    range_u16 => u16,
    range_u32 => u32,
    range_u64 => u64,
    range_usize => usize,
}

macro_rules! impl_rng_int_range {
    ($($fn_name:ident => $t:ty),* $(,)?) => {$(
        impl TestRng {
            /// Returns a uniform value in `start..end`.
            pub fn $fn_name(&mut self, start: $t, end: $t) -> $t {
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                ((start as i64).wrapping_add((self.next_u64() % span) as i64)) as $t
            }
        }
    )*};
}

impl_rng_int_range! {
    range_i8 => i8,
    range_i16 => i16,
    range_i32 => i32,
    range_i64 => i64,
    range_isize => isize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_test_name_replays_the_same_stream() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_test_names_diverge() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("y");
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn signed_ranges_handle_negative_bounds() {
        let mut rng = TestRng::for_test("signed");
        for _ in 0..1_000 {
            let v = rng.range_i32(-5, 5);
            assert!((-5..5).contains(&v));
        }
    }
}
