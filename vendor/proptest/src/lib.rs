//! Minimal offline stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) property-testing crate.
//!
//! The build container has no network access, so the workspace vendors the
//! subset of proptest's API that `tests/proptests.rs` uses:
//!
//! * the [`proptest!`] macro (with the inner `#![proptest_config(..)]`
//!   attribute and `arg in strategy` bindings),
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`, integer
//!   ranges, tuples, [`prop_oneof!`], [`collection::vec`],
//!   [`option::weighted`] and [`any`](arbitrary::any),
//! * the `prop_assert*` / [`prop_assume!`] macros,
//! * [`ProptestConfig`](test_runner::ProptestConfig).
//!
//! Differences from the real crate: value generation is a deterministic
//! stream (per-test name hash mixed with the `PROPTEST_SEED` environment
//! variable — see [`test_runner::SEED_ENV`]; no persisted failure files) and
//! failing cases are reported by a panic that prints the replaying seed,
//! without input *shrinking*. That trades debugging convenience for zero
//! dependencies; swapping the real crate back in is a one-line change in the
//! root `Cargo.toml`.

#![deny(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// The items a test usually needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `arg in strategy` binding is regenerated for
/// every case and the body re-run `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);
                    )+
                    // The case body runs in a closure so `prop_assume!` can
                    // skip the case with `return`. Arguments are moved in;
                    // they are regenerated on the next iteration.
                    let mut case_fn = move || $body;
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(&mut case_fn),
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed; replay its case \
                             stream with {}={} (no shrinking in the vendored shim)",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            $crate::test_runner::SEED_ENV,
                            $crate::test_runner::base_seed(),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Picks one of several strategies (uniformly) per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Asserts a condition inside a property-test case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property-test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property-test case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}
