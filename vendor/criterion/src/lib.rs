//! Minimal offline stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness.
//!
//! The build container has no network access, so the workspace vendors the
//! subset of Criterion's API that `crates/bench/benches/smr_ops.rs` uses:
//! [`Criterion`] with its builder knobs, [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros. Timing is a plain
//! warm-up + fixed-duration measurement loop reporting the mean ns/iter —
//! no statistical resampling, outlier analysis or HTML reports.
//!
//! Swapping this shim for the real crate is a one-line change in the root
//! `Cargo.toml` `[workspace.dependencies]` table.

#![deny(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (same contract as
/// `criterion::black_box`).
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendered into `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id displayed as `{function_name}/{parameter}`.
    pub fn new<F: fmt::Display, P: fmt::Display>(function_name: F, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timer handed to the benchmark closure; [`iter`](Self::iter) runs the
/// measured routine.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    /// Total measured time and iteration count, harvested by the caller.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Calls `routine` repeatedly: first for the warm-up period, then for the
    /// measurement period, recording the mean cost per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            black_box(routine());
        }

        let mut iters: u64 = 0;
        let start = Instant::now();
        let measurement_end = start + self.measurement_time;
        loop {
            // Batch iterations between clock reads so short routines are not
            // dominated by `Instant::now` overhead.
            for _ in 0..64 {
                black_box(routine());
            }
            iters += 64;
            if Instant::now() >= measurement_end {
                break;
            }
        }
        self.result = Some((start.elapsed(), iters));
    }
}

/// The benchmark driver. Mirrors the builder API of `criterion::Criterion`;
/// `sample_size` is accepted for compatibility but ignored (the shim reports
/// a single mean instead of a sampled distribution).
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the target sample count (kept for API compatibility; unused).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 10, "sample size must be at least 10");
        self.sample_size = n;
        self
    }

    /// Sets how long each routine runs before measurement starts.
    pub fn warm_up_time(mut self, dur: Duration) -> Self {
        self.warm_up_time = dur;
        self
    }

    /// Sets how long each routine is measured.
    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.measurement_time = dur;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, f);
        self
    }

    /// Benchmarks `f`, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.to_string();
        self.run_one(&name, |bencher| f(bencher, input));
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some((elapsed, iters)) if iters > 0 => {
                let ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
                println!("{name:<50} time: {ns_per_iter:>12.1} ns/iter ({iters} iters)");
            }
            _ => println!("{name:<50} (no measurement: Bencher::iter never called)"),
        }
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` function, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; nothing to parse here.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_as_function_slash_parameter() {
        assert_eq!(
            BenchmarkId::new("get_protected", "WFE").to_string(),
            "get_protected/WFE"
        );
    }

    #[test]
    fn bencher_runs_routine_and_records_iters() {
        let mut c = Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0, "routine was never invoked");
    }

    #[test]
    fn bench_with_input_passes_input_through() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        c.bench_with_input(BenchmarkId::new("sum", 3usize), &3usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
    }
}
