//! Minimal offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API surface).
//!
//! The build container has no network access, so the workspace vendors the
//! subset of `rand` the suite actually uses: a deterministic seedable
//! generator ([`rngs::StdRng`]), the [`Rng`]/[`SeedableRng`] traits, uniform
//! integer ranges via [`Rng::gen_range`] and Bernoulli draws via
//! [`Rng::gen_bool`]. The generator is SplitMix64 — statistically fine for
//! test/bench workload generation, *not* cryptographic.
//!
//! Swapping this shim for the real crate is a one-line change in the root
//! `Cargo.toml` `[workspace.dependencies]` table; no source file needs to
//! change.

#![deny(missing_docs)]

use core::ops::Range;

/// Core pseudo-random number source, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Equal seeds produce equal
    /// streams on every platform.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly distributed over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 high bits give a uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is negligible for the test-sized spans used here.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let offset = rng.next_u64() % span;
                ((self.start as i64).wrapping_add(offset as i64)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

/// Generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    ///
    /// Unlike the real `StdRng` this is not cryptographically secure; the
    /// suite only uses it to generate reproducible test and benchmark
    /// workloads.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood; public domain reference).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Run the seed through the SplitMix64 finalizer before storing
            // it, like the real `rand` does. Storing the raw seed would make
            // "seed ^ k*GAMMA" derivations (as the bench workload generator
            // uses) collide with the generator's own increment, handing
            // adjacent threads the same stream shifted by one draw.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            Self {
                state: z ^ (z >> 31),
            }
        }
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..3);
            assert!((0..3).contains(&w));
            let s: usize = rng.gen_range(1..400usize);
            assert!((1..400).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gamma_multiple_seeds_do_not_shift_into_each_other() {
        // The bench workload generator derives per-thread seeds as
        // `seed ^ (t + 1) * GAMMA` where GAMMA is SplitMix64's increment.
        // Without seed mixing, thread t's stream would be thread t-1's
        // stream advanced by one draw. Check the streams are unrelated.
        const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut a = StdRng::seed_from_u64(GAMMA);
        let mut b = StdRng::seed_from_u64(2u64.wrapping_mul(GAMMA));
        let stream_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let stream_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(stream_a, stream_b);
        assert_ne!(stream_a[1..], stream_b[..7], "b must not be a shifted a");
        assert_ne!(stream_b[1..], stream_a[..7], "a must not be a shifted b");
    }

    #[test]
    fn gen_bool_respects_extremes_and_mixes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
